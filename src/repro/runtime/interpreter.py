"""A call-by-value interpreter for (core) SIL programs.

The interpreter serves three purposes in the reproduction:

1. **Semantics oracle** — sequential and parallelized versions of a program
   must compute the same structures/values; tests compare heaps after
   running both.
2. **Dynamic race detector** — while executing a ``||`` statement it records
   the concrete locations read and written by each branch and reports any
   write/write or read/write overlap, validating that the static
   interference analysis was conservative.
3. **Cost model** — every executed operation contributes one unit of *work*;
   parallel branches contribute the maximum of their *spans*; the resulting
   work/span numbers drive the speedup benches (the substitute for the
   paper's 1989 parallel machine).

Only *core* programs (basic handle statements; see
:mod:`repro.sil.normalize`) are accepted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sil import ast
from ..sil.errors import SilRuntimeError
from ..sil.printer import format_stmt
from ..sil.typecheck import TypeInfo, check_program
from .heap import Heap
from .trace import (
    AccessSet,
    ExecutionResult,
    FieldLocation,
    RaceReport,
    VarLocation,
)
from .values import HandleValue, NodeRef, Value


@dataclass
class Frame:
    """One procedure activation: a frame id plus variable slots."""

    frame_id: int
    procedure: str
    variables: Dict[str, Value] = field(default_factory=dict)


@dataclass(frozen=True)
class CostModel:
    """Unit costs charged per operation kind."""

    basic_statement: int = 1
    condition: int = 1
    call_overhead: int = 1
    parallel_overhead: int = 0


class Interpreter:
    """Executes a core SIL program."""

    def __init__(
        self,
        program: ast.Program,
        info: Optional[TypeInfo] = None,
        heap: Optional[Heap] = None,
        max_steps: int = 5_000_000,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if not ast.program_is_core(program):
            raise SilRuntimeError(
                "the interpreter requires a normalized (core) program; "
                "run repro.sil.normalize.normalize_program first"
            )
        self.program = program
        self.info = info if info is not None else check_program(program)
        self.heap = heap if heap is not None else Heap()
        self.max_steps = max_steps
        self.cost = cost_model if cost_model is not None else CostModel()

        self._frame_counter = 0
        self._steps = 0
        self._op_counts: Dict[str, int] = {}
        self._races: List[RaceReport] = []
        self._collectors: List[AccessSet] = []
        self._parallel_statements = 0
        self._calls = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self, entry: str = "main", presets: Optional[Dict[str, Value]] = None
    ) -> ExecutionResult:
        """Execute ``entry`` (default ``main``) and return the execution result.

        ``presets`` optionally pre-initializes local variables of the entry
        procedure (e.g. binding ``root`` to a tree built directly on the
        heap from Python) before its body runs.
        """
        proc = self.program.callable(entry)
        if proc.params:
            raise SilRuntimeError(f"entry procedure {entry!r} must be parameterless")
        frame = self._new_frame(proc)
        if presets:
            for name, value in presets.items():
                if name not in frame.variables:
                    raise SilRuntimeError(
                        f"preset variable {name!r} is not declared in {entry!r}"
                    )
                frame.variables[name] = value
        work, span = self._exec_stmt(proc.body, frame)
        return ExecutionResult(
            work=work,
            span=span,
            heap=self.heap,
            main_locals=dict(frame.variables),
            op_counts=self._counter(),
            races=list(self._races),
            parallel_statements=self._parallel_statements,
            calls=self._calls,
        )

    def _counter(self):
        from collections import Counter

        return Counter(self._op_counts)

    # ------------------------------------------------------------------
    # Frames and bookkeeping
    # ------------------------------------------------------------------

    def _new_frame(self, proc: ast.Procedure) -> Frame:
        self._frame_counter += 1
        frame = Frame(frame_id=self._frame_counter, procedure=proc.name)
        for decl in proc.params + proc.locals:
            frame.variables[decl.name] = 0 if decl.type is ast.SilType.INT else None
        return frame

    def _charge(self, kind: str, cost: int) -> None:
        self._steps += cost
        self._op_counts[kind] = self._op_counts.get(kind, 0) + 1
        if self._steps > self.max_steps:
            raise SilRuntimeError(f"step limit exceeded ({self.max_steps})")

    # -- access recording (race detection) ---------------------------------

    def _record_var_read(self, frame: Frame, name: str) -> None:
        if self._collectors:
            location = VarLocation(frame.frame_id, name)
            for collector in self._collectors:
                collector.record_read(location)

    def _record_var_write(self, frame: Frame, name: str) -> None:
        if self._collectors:
            location = VarLocation(frame.frame_id, name)
            for collector in self._collectors:
                collector.record_write(location)

    def _record_field_read(self, ref: NodeRef, field_name: str) -> None:
        if self._collectors:
            location = FieldLocation(ref.node_id, field_name)
            for collector in self._collectors:
                collector.record_read(location)

    def _record_field_write(self, ref: NodeRef, field_name: str) -> None:
        if self._collectors:
            location = FieldLocation(ref.node_id, field_name)
            for collector in self._collectors:
                collector.record_write(location)

    # -- variable access ----------------------------------------------------

    def _read_var(self, frame: Frame, name: str) -> Value:
        if name not in frame.variables:
            raise SilRuntimeError(f"variable {name!r} not found in frame of {frame.procedure!r}")
        self._record_var_read(frame, name)
        return frame.variables[name]

    def _write_var(self, frame: Frame, name: str, value: Value) -> None:
        if name not in frame.variables:
            raise SilRuntimeError(f"variable {name!r} not found in frame of {frame.procedure!r}")
        self._record_var_write(frame, name)
        frame.variables[name] = value

    def _read_handle(self, frame: Frame, name: str) -> HandleValue:
        value = self._read_var(frame, name)
        if value is not None and not isinstance(value, NodeRef):
            raise SilRuntimeError(f"variable {name!r} does not hold a handle")
        return value

    def _require_node(self, frame: Frame, name: str) -> NodeRef:
        value = self._read_handle(frame, name)
        if value is None:
            raise SilRuntimeError(f"nil handle {name!r} dereferenced in {frame.procedure!r}")
        return value

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _exec_stmt(self, stmt: ast.Stmt, frame: Frame) -> Tuple[int, int]:
        """Execute one statement; returns its (work, span)."""
        if isinstance(stmt, ast.Block):
            work = span = 0
            for inner in stmt.stmts:
                w, s = self._exec_stmt(inner, frame)
                work += w
                span += s
            return work, span

        if isinstance(stmt, ast.ParallelStmt):
            return self._exec_parallel(stmt, frame)

        if isinstance(stmt, ast.IfStmt):
            self._charge("if", self.cost.condition)
            cond = self._eval_bool(stmt.cond, frame)
            if cond:
                w, s = self._exec_stmt(stmt.then_branch, frame)
            elif stmt.else_branch is not None:
                w, s = self._exec_stmt(stmt.else_branch, frame)
            else:
                w = s = 0
            return self.cost.condition + w, self.cost.condition + s

        if isinstance(stmt, ast.WhileStmt):
            work = span = 0
            while True:
                self._charge("while", self.cost.condition)
                work += self.cost.condition
                span += self.cost.condition
                if not self._eval_bool(stmt.cond, frame):
                    break
                w, s = self._exec_stmt(stmt.body, frame)
                work += w
                span += s
            return work, span

        if isinstance(stmt, ast.SkipStmt):
            return 0, 0

        if isinstance(stmt, ast.ProcCall):
            return self._exec_call(stmt.name, stmt.args, frame, result_target=None)

        if isinstance(stmt, ast.FuncAssign):
            return self._exec_call(stmt.name, stmt.args, frame, result_target=stmt.target)

        if isinstance(stmt, ast.BasicStmt):
            return self._exec_basic(stmt, frame)

        raise SilRuntimeError(f"cannot execute statement {type(stmt).__name__}")

    def _exec_basic(self, stmt: ast.BasicStmt, frame: Frame) -> Tuple[int, int]:
        kind = type(stmt).__name__
        self._charge(kind, self.cost.basic_statement)
        cost = self.cost.basic_statement

        if isinstance(stmt, ast.AssignNil):
            self._write_var(frame, stmt.target, None)
        elif isinstance(stmt, ast.AssignNew):
            ref = self.heap.allocate()
            self._write_var(frame, stmt.target, ref)
        elif isinstance(stmt, ast.CopyHandle):
            self._write_var(frame, stmt.target, self._read_handle(frame, stmt.source))
        elif isinstance(stmt, ast.LoadField):
            ref = self._require_node(frame, stmt.source)
            self._record_field_read(ref, stmt.field_name.value)
            self._write_var(frame, stmt.target, self.heap.read_link(ref, stmt.field_name))
        elif isinstance(stmt, ast.StoreField):
            ref = self._require_node(frame, stmt.target)
            value = None if stmt.source is None else self._read_handle(frame, stmt.source)
            self._record_field_write(ref, stmt.field_name.value)
            self.heap.write_link(ref, stmt.field_name, value)
        elif isinstance(stmt, ast.LoadValue):
            ref = self._require_node(frame, stmt.source)
            self._record_field_read(ref, ast.Field.VALUE.value)
            self._write_var(frame, stmt.target, self.heap.read_value(ref))
        elif isinstance(stmt, ast.StoreValue):
            ref = self._require_node(frame, stmt.target)
            value = self._eval_int(stmt.expr, frame)
            self._record_field_write(ref, ast.Field.VALUE.value)
            self.heap.write_value(ref, value)
        elif isinstance(stmt, ast.ScalarAssign):
            self._write_var(frame, stmt.target, self._eval_int(stmt.expr, frame))
        else:  # pragma: no cover - defensive
            raise SilRuntimeError(f"unknown basic statement {kind}")
        return cost, cost

    # -- parallel statements -------------------------------------------------

    def _exec_parallel(self, stmt: ast.ParallelStmt, frame: Frame) -> Tuple[int, int]:
        self._parallel_statements += 1
        self._charge("parallel", self.cost.parallel_overhead)
        branch_accesses: List[AccessSet] = []
        total_work = 0
        max_span = 0
        for branch in stmt.branches:
            collector = AccessSet()
            self._collectors.append(collector)
            try:
                work, span = self._exec_stmt(branch, frame)
            finally:
                self._collectors.pop()
            branch_accesses.append(collector)
            total_work += work
            max_span = max(max_span, span)

        # Pairwise race check between branches.
        for i in range(len(branch_accesses)):
            for j in range(i + 1, len(branch_accesses)):
                conflicts = branch_accesses[i].conflicts_with(branch_accesses[j])
                if conflicts:
                    self._races.append(
                        RaceReport(
                            locations=frozenset(conflicts),
                            branch_indices=(i, j),
                            statement_text=format_stmt(stmt),
                        )
                    )
        overhead = self.cost.parallel_overhead
        return overhead + total_work, overhead + max_span

    # -- calls ---------------------------------------------------------------

    def _exec_call(
        self,
        name: str,
        args: Sequence[ast.Expr],
        frame: Frame,
        result_target: Optional[str],
    ) -> Tuple[int, int]:
        self._calls += 1
        self._charge("call", self.cost.call_overhead)
        callee = self.program.callable(name)
        if len(args) != len(callee.params):
            raise SilRuntimeError(
                f"call to {name!r}: expected {len(callee.params)} arguments, got {len(args)}"
            )
        arg_values = [self._eval_expr(arg, frame) for arg in args]
        callee_frame = self._new_frame(callee)
        for decl, value in zip(callee.params, arg_values):
            callee_frame.variables[decl.name] = value
        work, span = self._exec_stmt(callee.body, callee_frame)

        if result_target is not None:
            if not isinstance(callee, ast.Function):
                raise SilRuntimeError(f"{name!r} is a procedure and returns no value")
            result = self._read_var(callee_frame, callee.return_var)
            self._write_var(frame, result_target, result)
        overhead = self.cost.call_overhead
        return overhead + work, overhead + span

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _eval_bool(self, expr: ast.Expr, frame: Frame) -> bool:
        value = self._eval_expr(expr, frame)
        if not isinstance(value, bool):
            raise SilRuntimeError("condition did not evaluate to a boolean")
        return value

    def _eval_int(self, expr: ast.Expr, frame: Frame) -> int:
        value = self._eval_expr(expr, frame)
        if isinstance(value, bool) or not isinstance(value, int):
            raise SilRuntimeError("expression did not evaluate to an int")
        return value

    def _eval_expr(self, expr: ast.Expr, frame: Frame):
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.NilLit):
            return None
        if isinstance(expr, ast.NewExpr):
            return self.heap.allocate()
        if isinstance(expr, ast.Name):
            return self._read_var(frame, expr.ident)
        if isinstance(expr, ast.FieldAccess):
            base = self._eval_expr(expr.base, frame)
            if base is None:
                raise SilRuntimeError("nil handle dereferenced in expression")
            if not isinstance(base, NodeRef):
                raise SilRuntimeError("field access on a non-handle value")
            self._record_field_read(base, expr.field_name.value)
            if expr.field_name is ast.Field.VALUE:
                return self.heap.read_value(base)
            return self.heap.read_link(base, expr.field_name)
        if isinstance(expr, ast.UnOp):
            operand = self._eval_expr(expr.operand, frame)
            if expr.op == "-":
                if isinstance(operand, bool) or not isinstance(operand, int):
                    raise SilRuntimeError("unary '-' applied to a non-int")
                return -operand
            if expr.op == "not":
                if not isinstance(operand, bool):
                    raise SilRuntimeError("'not' applied to a non-boolean")
                return not operand
            raise SilRuntimeError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, frame)
        if isinstance(expr, ast.CallExpr):
            raise SilRuntimeError(
                "function calls inside expressions must be normalized away "
                "(run the normalizer first)"
            )
        raise SilRuntimeError(f"cannot evaluate expression {type(expr).__name__}")

    def _eval_binop(self, expr: ast.BinOp, frame: Frame):
        op = expr.op
        left = self._eval_expr(expr.left, frame)
        right = self._eval_expr(expr.right, frame)

        if op in ("and", "or"):
            if not isinstance(left, bool) or not isinstance(right, bool):
                raise SilRuntimeError(f"operator {op!r} requires boolean operands")
            return (left and right) if op == "and" else (left or right)

        if op in ("=", "<>"):
            if isinstance(left, NodeRef) or left is None or isinstance(right, NodeRef) or right is None:
                equal = self._handles_equal(left, right)
            else:
                equal = left == right
            return equal if op == "=" else not equal

        # Arithmetic / ordering: ints only.
        for side, value in (("left", left), ("right", right)):
            if isinstance(value, bool) or not isinstance(value, int):
                raise SilRuntimeError(f"operator {op!r} requires int operands ({side} side)")
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "div":
            if right == 0:
                raise SilRuntimeError("division by zero")
            return int(left / right)  # truncating division, Pascal style
        if op == "mod":
            if right == 0:
                raise SilRuntimeError("modulo by zero")
            return left - right * int(left / right)
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise SilRuntimeError(f"unknown binary operator {op!r}")

    @staticmethod
    def _handles_equal(left, right) -> bool:
        if left is None and right is None:
            return True
        if isinstance(left, NodeRef) and isinstance(right, NodeRef):
            return left.node_id == right.node_id
        if (left is None and isinstance(right, NodeRef)) or (
            right is None and isinstance(left, NodeRef)
        ):
            return False
        raise SilRuntimeError("handle compared with a non-handle value")


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def run_program(
    program: ast.Program,
    info: Optional[TypeInfo] = None,
    heap: Optional[Heap] = None,
    entry: str = "main",
    presets: Optional[Dict[str, Value]] = None,
    max_steps: int = 5_000_000,
    cost_model: Optional[CostModel] = None,
) -> ExecutionResult:
    """Run a core SIL program and return its :class:`ExecutionResult`."""
    interpreter = Interpreter(
        program, info=info, heap=heap, max_steps=max_steps, cost_model=cost_model
    )
    return interpreter.run(entry=entry, presets=presets)


def run_source(source: str, **kwargs) -> ExecutionResult:
    """Parse, normalize and run SIL source text."""
    from ..sil.normalize import parse_and_normalize

    core, info = parse_and_normalize(source)
    return run_program(core, info, **kwargs)
