"""Execution traces, memory-access records and race reports.

The interpreter (:mod:`repro.runtime.interpreter`) produces an
:class:`ExecutionResult` containing

* **work** — the total number of unit-cost operations executed, and
* **span** — the length of the critical path, where the branches of a
  parallel statement ``s1 || s2 || ...`` contribute the *maximum* of their
  spans instead of the sum,

which together give the ideal parallelism (work / span) used by the
evaluation benches, plus the list of :class:`RaceReport` detected while
executing parallel statements (the dynamic validation of the static
interference analysis).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from .heap import Heap
from .values import Value


# ---------------------------------------------------------------------------
# Concrete memory locations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VarLocation:
    """A local variable slot in a specific activation frame."""

    frame_id: int
    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}@frame{self.frame_id}"


@dataclass(frozen=True)
class FieldLocation:
    """A field (``left``, ``right`` or ``value``) of a specific heap node."""

    node_id: int
    field_name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"node#{self.node_id}.{self.field_name}"


ConcreteLocation = Union[VarLocation, FieldLocation]


# ---------------------------------------------------------------------------
# Access collection (per parallel branch)
# ---------------------------------------------------------------------------


@dataclass
class AccessSet:
    """Reads and writes recorded while executing one parallel branch."""

    reads: Set[ConcreteLocation] = field(default_factory=set)
    writes: Set[ConcreteLocation] = field(default_factory=set)

    def record_read(self, location: ConcreteLocation) -> None:
        self.reads.add(location)

    def record_write(self, location: ConcreteLocation) -> None:
        self.writes.add(location)

    def conflicts_with(self, other: "AccessSet") -> Set[ConcreteLocation]:
        """Locations through which this access set and ``other`` race."""
        return (self.writes & (other.reads | other.writes)) | (other.writes & self.reads)


@dataclass
class RaceReport:
    """A data race detected between two branches of one parallel statement."""

    locations: FrozenSet[ConcreteLocation]
    branch_indices: Tuple[int, int]
    statement_text: str = ""

    def __str__(self) -> str:  # pragma: no cover - trivial
        locs = ", ".join(sorted(str(l) for l in self.locations))
        i, j = self.branch_indices
        return f"race between branches {i} and {j} on {{{locs}}}"


# ---------------------------------------------------------------------------
# Execution result
# ---------------------------------------------------------------------------


@dataclass
class ExecutionResult:
    """Everything the interpreter reports about one program run."""

    #: Total unit-cost operations executed.
    work: int
    #: Critical-path length (parallel branches contribute max, not sum).
    span: int
    #: Final heap.
    heap: Heap
    #: Final values of ``main``'s local variables (handles and ints).
    main_locals: Dict[str, Value] = field(default_factory=dict)
    #: Count of executed statements per statement-kind name.
    op_counts: Counter = field(default_factory=Counter)
    #: Data races detected inside parallel statements (empty = clean run).
    races: List[RaceReport] = field(default_factory=list)
    #: Number of parallel statements executed (dynamic instances).
    parallel_statements: int = 0
    #: Number of procedure/function calls executed.
    calls: int = 0

    @property
    def parallelism(self) -> float:
        """Ideal parallelism = work / span (1.0 for fully sequential runs)."""
        if self.span == 0:
            return 1.0
        return self.work / self.span

    @property
    def race_free(self) -> bool:
        return not self.races

    def speedup_over(self, sequential: "ExecutionResult") -> float:
        """Ideal speedup of this run relative to a sequential run's span."""
        if self.span == 0:
            return 1.0
        return sequential.span / self.span

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"work={self.work} span={self.span} parallelism={self.parallelism:.2f} "
            f"races={len(self.races)} calls={self.calls} heap={len(self.heap)} nodes"
        )
