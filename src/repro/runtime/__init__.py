"""Runtime substrate: heap, interpreter, structure checks and race detection."""

from .heap import Heap, Node, TreeSpec
from .interpreter import CostModel, Frame, Interpreter, run_program, run_source
from .structure import (
    StructureKind,
    StructureReport,
    classify_structure,
    is_dag,
    is_tree,
    subtrees_disjoint,
)
from .trace import (
    AccessSet,
    ExecutionResult,
    FieldLocation,
    RaceReport,
    VarLocation,
)
from .values import HandleValue, NodeRef, Value, format_value

__all__ = [
    "Heap",
    "Node",
    "TreeSpec",
    "Interpreter",
    "CostModel",
    "Frame",
    "run_program",
    "run_source",
    "StructureKind",
    "StructureReport",
    "classify_structure",
    "is_tree",
    "is_dag",
    "subtrees_disjoint",
    "ExecutionResult",
    "AccessSet",
    "RaceReport",
    "VarLocation",
    "FieldLocation",
    "NodeRef",
    "Value",
    "HandleValue",
    "format_value",
]
