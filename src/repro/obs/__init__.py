"""Observability: span tracing and shard-mergeable metrics.

Two small, dependency-free subsystems the rest of the codebase threads
through every layer:

* :mod:`.trace` — context-manager **spans** over monotonic clocks.  A
  process-global tracer is off by default and costs one global read per
  instrumentation point when disabled; when installed (``--trace FILE``
  on ``analyze``/``bench``/``serve``), spans from the pass pipeline, the
  per-procedure solver visits, the transfer-cache flush, the persistent
  codec and the shard dispatch are collected — across forked shard
  workers — and exported as Chrome trace-event JSON (loadable in
  Perfetto / ``chrome://tracing``) or a JSONL event log.
* :mod:`.metrics` — a registry of counters, gauges and fixed-bucket
  latency histograms that merges across processes exactly the way
  :class:`~repro.analysis.context.AnalysisStats` does: workers ship
  plain-data snapshots home and the parent's merge is bit-deterministic
  (histogram time sums are integer nanoseconds, so addition is exact).
  p50/p90/p99 are derived from the bucket boundaries — never from raw
  samples — so quantiles survive merging unchanged.

See ``docs/architecture.md`` §"Observability" for the span taxonomy and
metric naming scheme.
"""

from .metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    latency_tails,
    render_prometheus,
)
from .trace import (
    Tracer,
    current_tracer,
    install_tracer,
    span,
    stopwatch,
    tracing_enabled,
    uninstall_tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "current_tracer",
    "install_tracer",
    "latency_tails",
    "render_prometheus",
    "span",
    "stopwatch",
    "tracing_enabled",
    "uninstall_tracer",
]
