"""Span tracing over monotonic clocks, exported as Chrome trace events.

The tracer is a **flight recorder**: a process-global :class:`Tracer` that
instrumented code talks to through three module-level helpers —

* :func:`span` — a nestable context manager bracketing one named unit of
  work (an analysis pass, a solver visit, a cache flush, a codec decode);
* :func:`stopwatch` — a span that *also* reports its elapsed seconds on
  the context object, so call sites that need the wall time anyway (the
  suite runner's ``run*`` entry points) get one measurement for both the
  return value and the trace instead of hand-rolled ``perf_counter``
  bracketing;
* :func:`instant` — a zero-duration marker event.

**Disabled is the default and must stay near-free.**  Every helper reads
one module global; with no tracer installed it returns a shared no-op
context manager and records nothing — no allocation, no clock read (the
stopwatch still reads the clock, because its callers need the seconds
regardless).  The cold-median CI ratchet holds the instrumented hot paths
to this contract (``benchmarks/test_ext_obs_overhead.py``).

**Clocks and processes.**  Timestamps are ``time.perf_counter_ns()`` —
monotonic, unaffected by wall-clock steps.  On Linux it is
``CLOCK_MONOTONIC``, which forked shard workers share with the parent, so
worker spans land on the same timeline; each event carries its worker's
``pid``/``tid``, and the export labels every process, so Perfetto renders
the shard fan-out as parallel tracks.  Workers ship their events home in
the shard output dict (:meth:`Tracer.drain` / :meth:`Tracer.absorb`).

**Export.**  :meth:`Tracer.chrome_trace` emits the Chrome trace-event
JSON object format (``"X"`` complete events with microsecond ``ts`` /
``dur``), loadable in Perfetto and ``chrome://tracing``;
:meth:`Tracer.write_chrome` / :meth:`Tracer.write_jsonl` write the JSON
document / a one-event-per-line log.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "Tracer",
    "current_tracer",
    "install_tracer",
    "instant",
    "span",
    "stopwatch",
    "tracing_enabled",
    "uninstall_tracer",
]


class _NullSpan:
    """The shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span: records a complete ("X") event when it exits."""

    __slots__ = ("_tracer", "name", "args", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, args: Optional[Dict[str, Any]]):
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start_ns = 0

    def __enter__(self) -> "_Span":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._record(self.name, self._start_ns, time.perf_counter_ns(), self.args)
        return False


class Stopwatch:
    """A span that always measures; ``.seconds`` is set when the block exits.

    Used where the elapsed time is part of the *result* (suite reports),
    not just the trace: the clock is read whether or not a tracer is
    installed, and the event is recorded only when one is.  This is the
    single wall-clock bracketing helper the suite runner's entry points
    share, so their accounting cannot drift apart.
    """

    __slots__ = ("name", "args", "seconds", "_start_ns")

    def __init__(self, name: str, args: Optional[Dict[str, Any]] = None):
        self.name = name
        self.args = args
        self.seconds = 0.0
        self._start_ns = 0

    def __enter__(self) -> "Stopwatch":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        self.seconds = (end_ns - self._start_ns) / 1e9
        tracer = _ACTIVE
        if tracer is not None:
            tracer._record(self.name, self._start_ns, end_ns, self.args)
        return False


class Tracer:
    """Collects span events; thread-safe; exports Chrome trace JSON / JSONL."""

    def __init__(self):
        self._events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def span(self, name: str, args: Optional[Dict[str, Any]] = None) -> _Span:
        return _Span(self, name, args)

    def instant(self, name: str, args: Optional[Dict[str, Any]] = None) -> None:
        """A zero-duration marker event at now."""
        now_us = time.perf_counter_ns() // 1000
        event: Dict[str, Any] = {
            "name": name,
            "ph": "i",
            "ts": now_us,
            "s": "p",
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = dict(args)
        with self._lock:
            self._events.append(event)

    def _record(
        self, name: str, start_ns: int, end_ns: int, args: Optional[Dict[str, Any]]
    ) -> None:
        event: Dict[str, Any] = {
            "name": name,
            "ph": "X",
            "ts": start_ns // 1000,
            "dur": max(0, end_ns - start_ns) // 1000,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = dict(args)
        with self._lock:
            self._events.append(event)

    # ------------------------------------------------------------------
    # cross-process shipping
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Drop every recorded event (a forked worker clears its inherited copy)."""
        with self._lock:
            self._events.clear()

    def drain(self) -> List[Dict[str, Any]]:
        """Take (and clear) the recorded events — plain picklable dicts."""
        with self._lock:
            events = self._events
            self._events = []
        return events

    def absorb(self, events: List[Dict[str, Any]]) -> None:
        """Fold events another process drained into this tracer's timeline."""
        if not events:
            return
        with self._lock:
            self._events.extend(events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def events(self) -> List[Dict[str, Any]]:
        """A snapshot copy of the recorded events."""
        with self._lock:
            return list(self._events)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def chrome_trace(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON document (object format).

        Spans sort stably (ts, pid, tid) and every distinct pid gets a
        ``process_name`` metadata event — the parent as ``repro``, other
        pids as ``repro shard worker`` — so Perfetto labels the tracks.
        """
        events = sorted(
            self.events(), key=lambda e: (e.get("ts", 0), e.get("pid", 0), e.get("tid", 0))
        )
        own_pid = os.getpid()
        metadata: List[Dict[str, Any]] = []
        for pid in sorted({event["pid"] for event in events}):
            label = "repro" if pid == own_pid else "repro shard worker"
            metadata.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"{label} (pid {pid})"},
                }
            )
        return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: str) -> int:
        """Write the Chrome trace JSON; returns the number of span events."""
        document = self.chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        return sum(1 for event in document["traceEvents"] if event["ph"] != "M")

    def write_jsonl(self, path: str) -> int:
        """Write one JSON event per line (append-friendly log form)."""
        events = sorted(
            self.events(), key=lambda e: (e.get("ts", 0), e.get("pid", 0), e.get("tid", 0))
        )
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True, separators=(",", ":")))
                handle.write("\n")
        return len(events)


#: The process-global tracer; ``None`` means tracing is disabled (default).
_ACTIVE: Optional[Tracer] = None


def install_tracer(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process-global tracer, creating one if needed."""
    global _ACTIVE
    if tracer is None:
        tracer = _ACTIVE if _ACTIVE is not None else Tracer()
    _ACTIVE = tracer
    return tracer


def uninstall_tracer() -> Optional[Tracer]:
    """Disable tracing; returns the tracer that was active (events intact)."""
    global _ACTIVE
    tracer = _ACTIVE
    _ACTIVE = None
    return tracer


def current_tracer() -> Optional[Tracer]:
    return _ACTIVE


def tracing_enabled() -> bool:
    return _ACTIVE is not None


def span(name: str, args: Optional[Dict[str, Any]] = None):
    """A span context manager — the shared no-op when tracing is disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return _Span(tracer, name, args)


def stopwatch(name: str, args: Optional[Dict[str, Any]] = None) -> Stopwatch:
    """A measuring span: ``.seconds`` is always set, the event only when tracing."""
    return Stopwatch(name, args)


def instant(name: str, args: Optional[Dict[str, Any]] = None) -> None:
    """Record a marker event (no-op when tracing is disabled)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.instant(name, args)
