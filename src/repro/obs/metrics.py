"""Counters, gauges and fixed-bucket histograms with exact cross-shard merge.

The registry exists to answer one question the per-median benches cannot:
*what does the tail look like* — per workload, per server op — without
giving up the property every other statistic in this codebase has, that
**sharded == single-process, bit for bit**.  Three design rules make that
hold, mirroring :class:`~repro.analysis.context.AnalysisStats` and
:class:`~repro.analysis.telemetry.WideningTally`:

* every stored value is an **integer** — counter increments, gauge
  levels, histogram bucket occupancies, and histogram time sums kept in
  integer *nanoseconds* (``observe`` converts once) — so merging is
  integer addition: exact, associative, commutative;
* quantiles (p50/p90/p99) are **derived from the fixed bucket
  boundaries**, never from raw samples, so a merge of shard histograms
  yields exactly the quantiles a single process observing the union
  would report;
* registries cross process boundaries only as **plain-data snapshots**
  (:meth:`MetricsRegistry.as_dict` / :meth:`MetricsRegistry.from_dict`),
  the same way shard workers already ship ``AnalysisStats`` home, and
  :meth:`MetricsRegistry.canonical` renders a key-sorted minified JSON
  document for byte-level identity checks.

Naming scheme: dotted ``component.metric`` names (``suite.workload_seconds``,
``server.requests_total``) with optional ``{label="value"}`` dimensions;
durations end in ``_seconds``, monotone totals in ``_total``.
:func:`render_prometheus` rewrites dots to underscores for the text
exposition the daemon's ``metrics`` op serves.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "latency_tails",
    "render_prometheus",
]

#: Upper bucket bounds for latency histograms, in seconds: log-spaced from
#: 100µs to a minute, matching the spread between a memoized replay and a
#: cold adaptive-escalation solve.  Observations beyond the last bound land
#: in the overflow bucket.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Upper bucket bounds for count-valued histograms (worklist pops per
#: workload, frame sizes): log-spaced integers.
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 100000,
)

#: The p-quantiles every tails report derives from the buckets.
TAIL_QUANTILES: Tuple[Tuple[str, float], ...] = (("p50", 0.5), ("p90", 0.9), ("p99", 0.99))


def _labels_key(labels: Mapping[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_key(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotone integer total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += int(amount)


class Gauge:
    """An integer level (in-flight requests, queue depth).

    Merging sums levels across shards — the union of N workers each
    holding K in-flight *is* N·K in flight — which keeps the merge exact;
    last-write-wins semantics would not survive order-free merging.
    """

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value: int) -> None:
        self.value = int(value)

    def inc(self, amount: int = 1) -> None:
        self.value += int(amount)

    def dec(self, amount: int = 1) -> None:
        self.value -= int(amount)


class Histogram:
    """Fixed-bucket histogram: integer occupancies + an integer-ns sum.

    ``boundaries`` are inclusive upper bounds; ``counts`` has one extra
    overflow slot.  Observations are converted to integer nanoseconds up
    front so the running sum — and therefore every merge — is exact.
    """

    __slots__ = ("name", "labels", "boundaries", "counts", "count", "sum_ns")

    def __init__(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labels: Tuple[Tuple[str, str], ...] = (),
    ):
        if not boundaries or list(boundaries) != sorted(boundaries):
            raise ValueError("histogram boundaries must be a sorted non-empty sequence")
        self.name = name
        self.labels = labels
        self.boundaries = tuple(float(b) for b in boundaries)
        self.counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.sum_ns = 0

    def observe(self, value: float) -> None:
        """Record one observation (seconds for latency histograms)."""
        self.observe_ns(int(round(value * 1e9)))

    def observe_ns(self, value_ns: int) -> None:
        value = value_ns / 1e9
        index = len(self.boundaries)
        for i, bound in enumerate(self.boundaries):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.sum_ns += int(value_ns)

    def quantile(self, q: float) -> float:
        """The q-quantile in seconds, interpolated inside its bucket.

        Deterministic given the bucket occupancies (Prometheus-style
        linear interpolation): a merge of shard histograms reports the
        same quantiles as the single process would.  The overflow bucket
        clamps to the largest boundary.
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, occupancy in enumerate(self.counts):
            if not occupancy:
                continue
            if cumulative + occupancy >= rank:
                if i >= len(self.boundaries):
                    return self.boundaries[-1]
                lower = self.boundaries[i - 1] if i else 0.0
                upper = self.boundaries[i]
                fraction = (rank - cumulative) / occupancy
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
            cumulative += occupancy
        return self.boundaries[-1]  # pragma: no cover - unreachable with count > 0

    def mean(self) -> float:
        return (self.sum_ns / 1e9 / self.count) if self.count else 0.0


_KINDS = ("counters", "gauges", "histograms")


class MetricsRegistry:
    """Get-or-create instrument store with snapshot/merge plumbing.

    Structure mutation (instrument creation, absorb) and snapshots take an
    internal re-entrant lock so the daemon can record on its event loop
    while a worker thread folds a request's registry in; increments on an
    already-created instrument are plain integer adds on one object and
    stay lock-free.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = _render_key(name, _labels_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(
                    key, Counter(name, _labels_key(labels))
                )
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = _render_key(name, _labels_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(
                    key, Gauge(name, _labels_key(labels))
                )
        return instrument

    def histogram(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = _render_key(name, _labels_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    key, Histogram(name, boundaries, _labels_key(labels))
                )
        if instrument.boundaries != tuple(float(b) for b in boundaries):
            raise ValueError(f"histogram {key!r} re-declared with different boundaries")
        return instrument

    def histograms(self, name: Optional[str] = None) -> List[Histogram]:
        """Registered histograms, optionally restricted to one metric name."""
        with self._lock:
            return [
                h for h in self._histograms.values() if name is None or h.name == name
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    # snapshots (the only cross-process form)
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            return {
                "counters": {
                    key: {"name": c.name, "labels": dict(c.labels), "value": c.value}
                    for key, c in sorted(self._counters.items())
                },
                "gauges": {
                    key: {"name": g.name, "labels": dict(g.labels), "value": g.value}
                    for key, g in sorted(self._gauges.items())
                },
                "histograms": {
                    key: {
                        "name": h.name,
                        "labels": dict(h.labels),
                        "boundaries": list(h.boundaries),
                        "counts": list(h.counts),
                        "count": h.count,
                        "sum_ns": h.sum_ns,
                    }
                    for key, h in sorted(self._histograms.items())
                },
            }

    @classmethod
    def from_dict(cls, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        registry = cls()
        for entry in (snapshot.get("counters") or {}).values():
            registry.counter(entry["name"], **entry.get("labels", {})).inc(entry["value"])
        for entry in (snapshot.get("gauges") or {}).values():
            registry.gauge(entry["name"], **entry.get("labels", {})).set(entry["value"])
        for entry in (snapshot.get("histograms") or {}).values():
            histogram = registry.histogram(
                entry["name"], entry["boundaries"], **entry.get("labels", {})
            )
            counts = [int(c) for c in entry["counts"]]
            if len(counts) != len(histogram.counts):
                raise ValueError(f"histogram {entry['name']!r} snapshot shape mismatch")
            histogram.counts = counts
            histogram.count = int(entry["count"])
            histogram.sum_ns = int(entry["sum_ns"])
        return registry

    def canonical(self) -> str:
        """Key-sorted minified JSON — the byte-identity form the tests pin."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    # ------------------------------------------------------------------
    # merging (exact, like AnalysisStats)
    # ------------------------------------------------------------------

    def absorb(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry in place; returns self."""
        with self._lock, other._lock:
            for counter in list(other._counters.values()):
                self.counter(counter.name, **dict(counter.labels)).inc(counter.value)
            for gauge in list(other._gauges.values()):
                self.gauge(gauge.name, **dict(gauge.labels)).inc(gauge.value)
            for histogram in list(other._histograms.values()):
                mine = self.histogram(
                    histogram.name, histogram.boundaries, **dict(histogram.labels)
                )
                for i, occupancy in enumerate(histogram.counts):
                    mine.counts[i] += occupancy
                mine.count += histogram.count
                mine.sum_ns += histogram.sum_ns
        return self

    def merge(self, *others: "MetricsRegistry") -> "MetricsRegistry":
        """A new registry with every value summed across self and ``others``."""
        merged = MetricsRegistry()
        for source in (self, *others):
            merged.absorb(source)
        return merged

    def filtered(self, predicate: Callable[[str], bool]) -> "MetricsRegistry":
        """A new registry keeping only instruments whose *name* passes.

        The merge-determinism tests use this to strip wall-clock metrics
        (``*_seconds``) before comparing canonical snapshots: time is the
        one axis that legitimately differs between a sharded and a
        single-process run.
        """
        survivor = MetricsRegistry()
        clone = MetricsRegistry()
        for kind in _KINDS:
            snapshot = self.as_dict()[kind]
            kept = {k: v for k, v in snapshot.items() if predicate(v["name"])}
            clone.absorb(MetricsRegistry.from_dict({kind: kept}))
        survivor.absorb(clone)
        return survivor


# ---------------------------------------------------------------------------
# derived reports
# ---------------------------------------------------------------------------


def _tail_row(histogram: Histogram) -> Dict[str, Any]:
    row: Dict[str, Any] = {"count": histogram.count}
    for label, q in TAIL_QUANTILES:
        row[f"{label}_seconds"] = round(histogram.quantile(q), 6)
    row["mean_seconds"] = round(histogram.mean(), 6)
    return row


def latency_tails(
    registry: MetricsRegistry, name: str, label: Optional[str] = None
) -> Dict[str, Dict[str, Any]]:
    """Per-label p50/p90/p99 rows for one histogram family, plus ``_overall``.

    ``label`` picks the dimension used as the row key (default: the first
    label of each histogram); ``_overall`` is the exact bucket-wise merge
    of every matching histogram — the population tail, not an average of
    per-row tails.
    """
    rows: Dict[str, Dict[str, Any]] = {}
    overall: Optional[Histogram] = None
    for histogram in registry.histograms(name):
        labels = dict(histogram.labels)
        if label is not None:
            key = labels.get(label)
            if key is None:
                continue
        else:
            key = next(iter(labels.values()), "")
        rows[key] = _tail_row(histogram)
        if overall is None:
            overall = Histogram(name, histogram.boundaries)
        for i, occupancy in enumerate(histogram.counts):
            overall.counts[i] += occupancy
        overall.count += histogram.count
        overall.sum_ns += histogram.sum_ns
    report = {key: rows[key] for key in sorted(rows)}
    if overall is not None:
        report["_overall"] = _tail_row(overall)
    return report


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: Mapping[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(k, v) for k, v in sorted(labels.items())]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
    return f"{{{inner}}}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: List[str] = []
    snapshot = registry.as_dict()
    seen_types: set = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot["counters"].values():
        name = _prom_name(entry["name"])
        type_line(name, "counter")
        lines.append(f"{name}{_prom_labels(entry['labels'])} {entry['value']}")
    for entry in snapshot["gauges"].values():
        name = _prom_name(entry["name"])
        type_line(name, "gauge")
        lines.append(f"{name}{_prom_labels(entry['labels'])} {entry['value']}")
    for entry in snapshot["histograms"].values():
        name = _prom_name(entry["name"])
        type_line(name, "histogram")
        labels = entry["labels"]
        cumulative = 0
        for bound, occupancy in zip(entry["boundaries"], entry["counts"]):
            cumulative += occupancy
            le = ("le", f"{bound:g}")
            lines.append(f"{name}_bucket{_prom_labels(labels, le)} {cumulative}")
        lines.append(f"{name}_bucket{_prom_labels(labels, ('le', '+Inf'))} {entry['count']}")
        lines.append(f"{name}_sum{_prom_labels(labels)} {entry['sum_ns'] / 1e9:.9f}")
        lines.append(f"{name}_count{_prom_labels(labels)} {entry['count']}")
    return "\n".join(lines) + "\n"
