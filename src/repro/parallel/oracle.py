"""Dependence oracles: the interface between analyses and the parallelizer.

The parallelizer asks one question: *may these two adjacent statements
interfere if executed in parallel at this program point?*  Different
analyses answer it with different precision:

* :class:`PathMatrixOracle` — the paper's analysis (Sections 4–5);
* the baselines in :mod:`repro.baselines` — a fully conservative oracle and
  a Lucassen–Gifford-style region/effect oracle — answer the same question
  the way pre-existing techniques would.

Plugging different oracles into the same transformation quantifies how much
parallelism the path-matrix analysis exposes over prior work (bench EXT-C).
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Tuple

from ..analysis import AnalysisResult, analyze_program
from ..analysis.context import AnalysisContext, AnalysisStats
from ..analysis.limits import DEFAULT_LIMITS, AnalysisLimits
from ..analysis.matrix import PathMatrix
from ..analysis.transfer import TransferCache
from ..interference.basic import statements_interfere
from ..interference.calls import calls_independent
from ..interference.locations import LocationKind
from ..interference.readwrite import read_set, write_set
from ..sil import ast
from ..sil.typecheck import TypeInfo, check_program


def is_call(stmt: ast.Stmt) -> bool:
    return isinstance(stmt, (ast.ProcCall, ast.FuncAssign))


def is_groupable(stmt: ast.Stmt) -> bool:
    """Statements the transformation may place inside a parallel group."""
    return isinstance(stmt, (ast.BasicStmt, ast.ProcCall, ast.FuncAssign, ast.SkipStmt))


class DependenceOracle(abc.ABC):
    """Answers independence queries for pairs of adjacent statements."""

    #: Short name used in benchmark tables.
    name: str = "oracle"

    @abc.abstractmethod
    def prepare(self, program: ast.Program, info: TypeInfo) -> None:
        """Called once per program before any query."""

    @abc.abstractmethod
    def independent(
        self,
        first: ast.Stmt,
        second: ast.Stmt,
        group_start: ast.Stmt,
        procedure: str,
    ) -> bool:
        """May ``first`` and ``second`` safely execute in parallel?

        ``group_start`` is the first statement of the parallel group being
        grown — the program point whose path matrix governs the decision
        (Section 5.1's "program point with path matrix p").
        """


class PathMatrixOracle(DependenceOracle):
    """The paper's oracle: path-matrix interference analysis."""

    name = "path-matrix"

    def __init__(
        self,
        limits: AnalysisLimits = DEFAULT_LIMITS,
        use_update_refinement: bool = True,
        analysis: Optional[AnalysisResult] = None,
        transfer_cache: Optional[TransferCache] = None,
    ) -> None:
        self.limits = limits
        self.use_update_refinement = use_update_refinement
        self.analysis = analysis
        #: Optional shared memoized-transfer cache.  Passing the same cache
        #: to several oracles (or reusing one oracle across programs) lets
        #: re-preparation hit previously computed transfers; ``None`` uses
        #: the process-wide shared cache.
        self.transfer_cache = transfer_cache

    # ------------------------------------------------------------------

    def prepare(self, program: ast.Program, info: TypeInfo) -> None:
        if self.analysis is None or self.analysis.program is not program:
            context = AnalysisContext(
                program=program,
                info=info,
                limits=self.limits,
                transfer_cache=self.transfer_cache,
            )
            self.analysis = analyze_program(program, info, context=context)

    @property
    def stats(self) -> Optional[AnalysisStats]:
        """Work counters of the prepared analysis (None before prepare())."""
        return self.analysis.stats if self.analysis is not None else None

    def _matrix_at(self, group_start: ast.Stmt) -> PathMatrix:
        assert self.analysis is not None, "prepare() must be called first"
        return self.analysis.matrix_before(group_start)

    # ------------------------------------------------------------------

    def independent(
        self,
        first: ast.Stmt,
        second: ast.Stmt,
        group_start: ast.Stmt,
        procedure: str,
    ) -> bool:
        assert self.analysis is not None, "prepare() must be called first"
        matrix = self._matrix_at(group_start)
        program = self.analysis.program

        if is_call(first) and is_call(second):
            return calls_independent(
                first,
                second,
                matrix,
                program,
                self.analysis.summaries,
                use_update_refinement=self.use_update_refinement,
            )
        if not is_call(first) and not is_call(second):
            return not statements_interfere(first, second, matrix)
        # Mixed pair: one basic statement, one call.
        if is_call(first):
            return self._call_vs_basic(first, second, matrix)
        return self._call_vs_basic(second, first, matrix)

    # ------------------------------------------------------------------

    def _call_vs_basic(self, call: ast.Stmt, basic: ast.Stmt, matrix: PathMatrix) -> bool:
        """Conservative independence test between a call and a basic statement.

        The call may read any node at/below its handle arguments and write
        any node at/below its *update* arguments (plus its scalar result
        variable); the basic statement's read/write locations are checked
        against those regions.
        """
        assert self.analysis is not None
        program = self.analysis.program
        if isinstance(call, ast.ProcCall):
            callee_name, args, target = call.name, call.args, None
        else:
            assert isinstance(call, ast.FuncAssign)
            callee_name, args, target = call.name, call.args, call.target
        callee = program.callable(callee_name)
        summary = self.analysis.summaries[callee_name]

        handle_args = []
        update_args = []
        scalar_arg_vars = set()
        for param, arg in zip(callee.params, args):
            if param.type is ast.SilType.HANDLE:
                if isinstance(arg, ast.Name):
                    handle_args.append(arg.ident)
                    if summary.is_update(param.name):
                        update_args.append(arg.ident)
            else:
                scalar_arg_vars.update(ast.names_in_expr(arg))

        call_var_reads = scalar_arg_vars | set(handle_args)
        call_var_writes = {target} if target is not None else set()

        basic_reads = read_set(basic, matrix)
        basic_writes = write_set(basic, matrix)

        for location in basic_writes:
            if location.kind is LocationKind.VAR:
                if location.name in call_var_reads or location.name in call_var_writes:
                    return False
            else:
                # A heap write conflicts if the written node may be reachable
                # from any handle argument of the call.
                if any(
                    matrix.related(location.name, arg) or location.name == arg
                    for arg in handle_args
                ):
                    return False
        for location in basic_reads:
            if location.kind is LocationKind.VAR:
                if location.name in call_var_writes:
                    return False
            else:
                # A heap read conflicts only with the call's update region.
                if any(
                    matrix.related(location.name, arg) or location.name == arg
                    for arg in update_args
                ):
                    return False
        return True


# ---------------------------------------------------------------------------
# Batch preparation (generated-scenario populations)
# ---------------------------------------------------------------------------


def batch_oracles(
    pairs: Iterable[Tuple[ast.Program, Optional[TypeInfo]]],
    limits: AnalysisLimits = DEFAULT_LIMITS,
) -> List[PathMatrixOracle]:
    """Prepared :class:`PathMatrixOracle`\\ s for a batch of programs.

    All oracles share one memoized-transfer cache (the oracle analogue of
    :func:`repro.analysis.engine.analyze_many`), so preparing a population
    of generated scenarios — structurally similar programs — hits across
    programs instead of recomputing every transfer from scratch.
    """
    shared_cache = TransferCache(limits.transfer_cache_size)
    oracles: List[PathMatrixOracle] = []
    for program, info in pairs:
        if info is None:
            info = check_program(program)
        oracle = PathMatrixOracle(limits=limits, transfer_cache=shared_cache)
        oracle.prepare(program, info)
        oracles.append(oracle)
    return oracles


def parallelism_census(
    program: ast.Program,
    info: Optional[TypeInfo] = None,
    oracle: Optional[DependenceOracle] = None,
    limits: AnalysisLimits = DEFAULT_LIMITS,
) -> Dict[str, int]:
    """How much parallelism an oracle exposes in one program, as plain counters.

    Runs the Figure 8 transformation with the given oracle (default: a
    fresh :class:`PathMatrixOracle`) and returns the group/query counters —
    the per-scenario parallelism row the batch-analysis CLI reports for
    generated populations.
    """
    from .transform import parallelize_program

    if info is None:
        info = check_program(program)
    if oracle is None:
        oracle = PathMatrixOracle(limits=limits)
    result = parallelize_program(program, info, oracle=oracle)
    stats = result.stats
    return {
        "groups": stats.groups,
        "statements_in_groups": stats.statements_in_groups,
        "largest_group": stats.largest_group,
        "call_groups": stats.call_groups,
        "queries": stats.queries,
        "independent_answers": stats.independent_answers,
    }
