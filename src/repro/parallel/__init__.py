"""Parallelization: dependence oracles, the Figure 8 transformation, speedup model."""

from .oracle import (
    DependenceOracle,
    PathMatrixOracle,
    batch_oracles,
    is_call,
    is_groupable,
    parallelism_census,
)
from .schedule import (
    DEFAULT_PROCESSORS,
    ParallelismReport,
    SpeedupRow,
    build_report,
    greedy_time,
)
from .transform import (
    ParallelizationResult,
    ParallelizationStats,
    Parallelizer,
    parallelize_program,
)

__all__ = [
    "DependenceOracle",
    "PathMatrixOracle",
    "is_call",
    "is_groupable",
    "batch_oracles",
    "parallelism_census",
    "parallelize_program",
    "Parallelizer",
    "ParallelizationResult",
    "ParallelizationStats",
    "ParallelismReport",
    "SpeedupRow",
    "build_report",
    "greedy_time",
    "DEFAULT_PROCESSORS",
]
