"""Parallel-execution cost model: work/span accounting and P-processor speedup.

The paper reports *detected parallelism*; its 1989 testbed is not
available, so the reproduction substitutes a deterministic machine model
(see DESIGN.md §3):

* the interpreter (:mod:`repro.runtime.interpreter`) charges one unit per
  executed operation and computes **work** (total units) and **span**
  (critical-path units, where the branches of ``s1 || s2 || ...``
  contribute the maximum instead of the sum);
* this module turns those numbers into P-processor execution-time estimates
  using the greedy-scheduling (Brent) bound ``T_P = max(span, work / P)``
  and into speedup tables comparing the sequential and the parallelized
  program.

This captures exactly the parallelism the transformation exposes,
independent of any particular machine's constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..runtime.trace import ExecutionResult

#: Processor counts reported by default (the paper targets "large scale
#: parallel machines"; infinity shows the ideal parallelism).
DEFAULT_PROCESSORS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)


def greedy_time(work: int, span: int, processors: Optional[int]) -> float:
    """Estimated execution time on ``processors`` (None = unbounded).

    Uses the ideal greedy-scheduler estimate ``max(span, work / P)``; any
    greedy schedule of a series-parallel computation finishes within
    ``work / P + span``, so the estimate is within a factor of two of every
    greedy schedule and exact for ``P = 1`` and ``P = ∞``.
    """
    if work < 0 or span < 0:
        raise ValueError("work and span must be non-negative")
    if processors is None:
        return float(span)
    if processors < 1:
        raise ValueError("processor count must be positive")
    return float(max(span, math.ceil(work / processors)))


@dataclass
class SpeedupRow:
    """Speedup of the parallel program over the sequential one on P processors."""

    processors: Optional[int]
    sequential_time: float
    parallel_time: float

    @property
    def speedup(self) -> float:
        if self.parallel_time == 0:
            return 1.0
        return self.sequential_time / self.parallel_time

    @property
    def label(self) -> str:
        return "inf" if self.processors is None else str(self.processors)


@dataclass
class ParallelismReport:
    """Comparison of a sequential run and a parallelized run of the same workload."""

    workload: str
    sequential: ExecutionResult
    parallel: ExecutionResult
    rows: List[SpeedupRow] = field(default_factory=list)

    @property
    def ideal_parallelism(self) -> float:
        """work / span of the parallelized run."""
        return self.parallel.parallelism

    @property
    def max_speedup(self) -> float:
        """Speedup with unbounded processors (sequential span / parallel span)."""
        if self.parallel.span == 0:
            return 1.0
        return self.sequential.span / self.parallel.span

    @property
    def race_free(self) -> bool:
        return self.parallel.race_free

    def row(self, processors: Optional[int]) -> SpeedupRow:
        for row in self.rows:
            if row.processors == processors:
                return row
        raise KeyError(f"no row for {processors} processors")

    def format_table(self) -> str:
        """Render the speedup table as aligned text."""
        header = ["P", "T_seq", "T_par", "speedup"]
        lines = [
            f"workload: {self.workload}  (work_seq={self.sequential.work}, "
            f"work_par={self.parallel.work}, span_par={self.parallel.span}, "
            f"parallelism={self.ideal_parallelism:.2f})"
        ]
        rows = [header] + [
            [row.label, f"{row.sequential_time:.0f}", f"{row.parallel_time:.0f}", f"{row.speedup:.2f}"]
            for row in self.rows
        ]
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        for index, row in enumerate(rows):
            lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)


def build_report(
    workload: str,
    sequential: ExecutionResult,
    parallel: ExecutionResult,
    processors: Sequence[Optional[int]] = DEFAULT_PROCESSORS,
    include_unbounded: bool = True,
) -> ParallelismReport:
    """Build a :class:`ParallelismReport` from two execution results."""
    report = ParallelismReport(workload=workload, sequential=sequential, parallel=parallel)
    processor_list: List[Optional[int]] = list(processors)
    if include_unbounded and None not in processor_list:
        processor_list.append(None)
    for count in processor_list:
        report.rows.append(
            SpeedupRow(
                processors=count,
                sequential_time=greedy_time(sequential.work, sequential.span, 1)
                if count == 1
                else greedy_time(sequential.work, sequential.span, count),
                parallel_time=greedy_time(parallel.work, parallel.span, count),
            )
        )
    return report
