"""The parallelizing transformation (Figure 4 / Figure 8).

Walks every procedure of a (core) SIL program and greedily fuses maximal
runs of adjacent, pairwise-independent statements into parallel statements
``s1 || s2 || ... || sn``.  Group membership is decided by a pluggable
:class:`~repro.parallel.oracle.DependenceOracle`; with the
:class:`~repro.parallel.oracle.PathMatrixOracle` this implements the
combination of the paper's methods:

* §5.1 — adjacent basic handle statements that do not interfere;
* §5.2 — adjacent procedure calls whose (update) handle arguments are
  unrelated — this is what parallelizes the recursive calls of ``add_n``
  and ``reverse``;
* mixed basic/call pairs with a conservative region test.

Compound statements (``if``, ``while``, nested blocks) are not fused into
groups but their bodies are transformed recursively.  The transformation
never reorders statements: a statement joins the current group only if it
is independent of *every* statement already in the group, otherwise the
group is closed and a new one starts — exactly the incremental scheme of
Section 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sil import ast
from ..sil.typecheck import TypeInfo, check_program
from .oracle import DependenceOracle, PathMatrixOracle, is_call, is_groupable


@dataclass
class ParallelizationStats:
    """What the transformation found and did."""

    #: Number of parallel groups created (size >= 2).
    groups: int = 0
    #: Total number of statements placed into parallel groups.
    statements_in_groups: int = 0
    #: Size of the largest group.
    largest_group: int = 0
    #: Number of groups that contain at least two procedure/function calls.
    call_groups: int = 0
    #: Independence queries asked / answered positively.
    queries: int = 0
    independent_answers: int = 0
    #: Per-procedure group counts.
    per_procedure: Dict[str, int] = field(default_factory=dict)

    def record_group(self, procedure: str, group: List[ast.Stmt]) -> None:
        self.groups += 1
        self.statements_in_groups += len(group)
        self.largest_group = max(self.largest_group, len(group))
        if sum(1 for stmt in group if is_call(stmt)) >= 2:
            self.call_groups += 1
        self.per_procedure[procedure] = self.per_procedure.get(procedure, 0) + 1


@dataclass
class ParallelizationResult:
    """The transformed (parallel) program plus statistics."""

    program: ast.Program
    stats: ParallelizationStats
    oracle_name: str

    def procedure(self, name: str) -> ast.Procedure:
        return self.program.callable(name)


class Parallelizer:
    """Applies the transformation to one program with one oracle."""

    def __init__(self, oracle: DependenceOracle):
        self.oracle = oracle
        self.stats = ParallelizationStats()

    # ------------------------------------------------------------------

    def transform_program(self, program: ast.Program, info: TypeInfo) -> ParallelizationResult:
        self.oracle.prepare(program, info)
        procedures = []
        functions = []
        for proc in program.procedures:
            procedures.append(self._transform_procedure(proc))
        for func in program.functions:
            functions.append(self._transform_procedure(func))
        parallel_program = ast.Program(
            name=program.name, procedures=procedures, functions=functions, loc=program.loc
        )
        return ParallelizationResult(
            program=parallel_program, stats=self.stats, oracle_name=self.oracle.name
        )

    def _transform_procedure(self, proc: ast.Procedure) -> ast.Procedure:
        body = self._transform_stmt(proc.body, proc.name)
        if not isinstance(body, ast.Block):
            body = ast.Block(stmts=[body])
        params = [ast.VarDecl(name=p.name, type=p.type) for p in proc.params]
        locals_ = [ast.VarDecl(name=v.name, type=v.type) for v in proc.locals]
        if isinstance(proc, ast.Function):
            return ast.Function(
                name=proc.name,
                params=params,
                locals=locals_,
                body=body,
                return_type=proc.return_type,
                return_var=proc.return_var,
            )
        return ast.Procedure(name=proc.name, params=params, locals=locals_, body=body)

    # ------------------------------------------------------------------

    def _transform_stmt(self, stmt: ast.Stmt, procedure: str) -> ast.Stmt:
        if isinstance(stmt, ast.Block):
            return self._transform_block(stmt, procedure)
        if isinstance(stmt, ast.IfStmt):
            return ast.IfStmt(
                cond=stmt.cond,
                then_branch=self._transform_stmt(stmt.then_branch, procedure),
                else_branch=(
                    self._transform_stmt(stmt.else_branch, procedure)
                    if stmt.else_branch is not None
                    else None
                ),
                loc=stmt.loc,
            )
        if isinstance(stmt, ast.WhileStmt):
            return ast.WhileStmt(
                cond=stmt.cond, body=self._transform_stmt(stmt.body, procedure), loc=stmt.loc
            )
        if isinstance(stmt, ast.ParallelStmt):
            return ast.ParallelStmt(
                branches=[self._transform_stmt(branch, procedure) for branch in stmt.branches],
                loc=stmt.loc,
            )
        # Leaf statements are reused as-is (the transformed program shares
        # them with the input program).
        return stmt

    def _transform_block(self, block: ast.Block, procedure: str) -> ast.Block:
        new_stmts: List[ast.Stmt] = []
        index = 0
        items = block.stmts
        while index < len(items):
            stmt = items[index]
            if not is_groupable(stmt):
                new_stmts.append(self._transform_stmt(stmt, procedure))
                index += 1
                continue
            group = [stmt]
            group_start = stmt
            next_index = index + 1
            while next_index < len(items) and is_groupable(items[next_index]):
                candidate = items[next_index]
                if self._independent_of_group(group, candidate, group_start, procedure):
                    group.append(candidate)
                    next_index += 1
                else:
                    break
            if len(group) > 1:
                self.stats.record_group(procedure, group)
                new_stmts.append(ast.ParallelStmt(branches=list(group), loc=group_start.loc))
            else:
                new_stmts.append(stmt)
            index = next_index
        return ast.Block(stmts=new_stmts, loc=block.loc)

    def _independent_of_group(
        self,
        group: List[ast.Stmt],
        candidate: ast.Stmt,
        group_start: ast.Stmt,
        procedure: str,
    ) -> bool:
        for member in group:
            self.stats.queries += 1
            if not self.oracle.independent(member, candidate, group_start, procedure):
                return False
            self.stats.independent_answers += 1
        return True


def parallelize_program(
    program: ast.Program,
    info: Optional[TypeInfo] = None,
    oracle: Optional[DependenceOracle] = None,
) -> ParallelizationResult:
    """Parallelize a core SIL program (Figure 8 transformation).

    ``oracle`` defaults to the paper's :class:`PathMatrixOracle`; pass one of
    the baselines from :mod:`repro.baselines` to see what a conservative or
    region-based analysis would achieve instead.
    """
    if not ast.program_is_core(program):
        raise ValueError(
            "parallelize_program requires a normalized (core) program; "
            "run repro.sil.normalize.normalize_program first"
        )
    if info is None:
        info = check_program(program)
    if oracle is None:
        oracle = PathMatrixOracle()
    return Parallelizer(oracle).transform_program(program, info)
