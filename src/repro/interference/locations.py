"""Location abstractions used by the interference analysis.

Section 5.1 abstracts a memory location as a pair ``(name, kind)`` where
``name`` is a variable name and ``kind`` is one of ``var`` (the variable
itself), ``left``, ``right`` or ``value`` (a field of the node the variable
names).

Section 5.3 refines this for statement *sequences* into a **relative
location** ``(name, kind, access_path)``: the location is reached from the
live-in handle ``name`` by following ``access_path`` (a set of path
expressions) and then selecting the field ``kind``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional

from ..sil.ast import Field
from ..analysis.paths import Path, format_path
from ..analysis.pathset import PathSet


class LocationKind(enum.Enum):
    """What part of a variable / node a location denotes."""

    VAR = "var"
    LEFT = "left"
    RIGHT = "right"
    VALUE = "value"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @staticmethod
    def of_field(field: Field) -> "LocationKind":
        return {
            Field.LEFT: LocationKind.LEFT,
            Field.RIGHT: LocationKind.RIGHT,
            Field.VALUE: LocationKind.VALUE,
        }[field]

    @property
    def is_field(self) -> bool:
        return self is not LocationKind.VAR


@dataclass(frozen=True)
class Location:
    """The Section 5.1 location abstraction: ``(name, kind)``."""

    name: str
    kind: LocationKind

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"({self.name},{self.kind.value})"


def var_location(name: str) -> Location:
    return Location(name, LocationKind.VAR)


def field_location(name: str, field: Field) -> Location:
    return Location(name, LocationKind.of_field(field))


@dataclass(frozen=True)
class RelativeLocation:
    """The Section 5.3 relative location: ``(name, kind, access_path)``.

    ``access_path`` is a frozen set of :class:`~repro.analysis.paths.Path`
    describing how the accessed node is reached from the handle ``name``
    (``S`` when the handle itself names the node).  For ``var`` locations
    the access path is always ``{S}``.
    """

    name: str
    kind: LocationKind
    access_path: FrozenSet[Path]

    def __str__(self) -> str:  # pragma: no cover - trivial
        paths = ", ".join(sorted(format_path(p) for p in self.access_path)) or "S"
        return f"({self.name},{self.kind.value},{{{paths}}})"

    @property
    def path_set(self) -> PathSet:
        return PathSet(self.access_path)


def relative_var_location(name: str) -> RelativeLocation:
    """A relative location for the variable ``name`` itself."""
    return RelativeLocation(name, LocationKind.VAR, frozenset({Path((), True)}))


def relative_field_location(name: str, field: Field, paths: PathSet) -> RelativeLocation:
    """A relative location for a field reached from ``name`` via ``paths``."""
    return RelativeLocation(name, LocationKind.of_field(field), frozenset(paths))
