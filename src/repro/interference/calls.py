"""Interference between procedure calls (Section 5.2).

Two procedure calls ``f(x1..xm)`` and ``g(y1..yn)`` at a program point with
path matrix ``p`` cannot interfere when their handle arguments are pairwise
*unrelated* — in a TREE, the only nodes a procedure can access are those
reachable from its handle arguments, and unrelated handles root disjoint
sub-trees.

The refinement of the second half of Section 5.2 uses the read-only /
update classification of the callees' formals (computed by
:mod:`repro.analysis.summaries`): only *update* arguments can be the source
of interference, so the check is restricted to

* every update argument of ``f`` is unrelated to every argument of ``g``, and
* every update argument of ``g`` is unrelated to every argument of ``f``.

Scalar (int) arguments and function-result targets are also checked at the
variable level (two calls both writing the same result variable interfere).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.matrix import PathMatrix
from ..analysis.summaries import ProcedureSummary
from ..sil import ast
from .locations import Location, var_location


@dataclass
class CallInterferenceReport:
    """Why two calls may (or may not) interfere."""

    interferes: bool
    #: Pairs of handle argument names found to be related.
    related_handle_pairs: List[Tuple[str, str]] = field(default_factory=list)
    #: Variable-level conflicts (result targets / scalar arguments).
    variable_conflicts: Set[Location] = field(default_factory=set)
    #: Human-readable explanation.
    reason: str = ""

    @property
    def independent(self) -> bool:
        return not self.interferes

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.reason or ("interferes" if self.interferes else "independent")


def _call_parts(stmt: ast.Stmt) -> Tuple[str, List[ast.Expr], Optional[str]]:
    if isinstance(stmt, ast.ProcCall):
        return stmt.name, list(stmt.args), None
    if isinstance(stmt, ast.FuncAssign):
        return stmt.name, list(stmt.args), stmt.target
    raise TypeError(f"not a call statement: {type(stmt).__name__}")


def _handle_arguments(
    args: Sequence[ast.Expr], callee: ast.Procedure
) -> List[Tuple[str, Optional[str]]]:
    """(formal, actual-variable-or-None) pairs for the handle parameters."""
    pairs: List[Tuple[str, Optional[str]]] = []
    for param, arg in zip(callee.params, args):
        if param.type is not ast.SilType.HANDLE:
            continue
        pairs.append((param.name, arg.ident if isinstance(arg, ast.Name) else None))
    return pairs


def _scalar_reads(args: Sequence[ast.Expr], callee: ast.Procedure) -> Set[Location]:
    reads: Set[Location] = set()
    for param, arg in zip(callee.params, args):
        if param.type is ast.SilType.HANDLE:
            continue
        for name in ast.names_in_expr(arg):
            reads.add(var_location(name))
    return reads


def calls_interfere(
    first: ast.Stmt,
    second: ast.Stmt,
    matrix: PathMatrix,
    program: ast.Program,
    summaries: Optional[Dict[str, ProcedureSummary]] = None,
    use_update_refinement: bool = True,
) -> CallInterferenceReport:
    """Decide whether two call statements may interfere (Section 5.2).

    With ``use_update_refinement=False`` the coarser first approximation of
    the paper is used: *all* handle arguments of one call must be unrelated
    to *all* handle arguments of the other.
    """
    first_name, first_args, first_target = _call_parts(first)
    second_name, second_args, second_target = _call_parts(second)
    first_callee = program.callable(first_name)
    second_callee = program.callable(second_name)

    first_handles = _handle_arguments(first_args, first_callee)
    second_handles = _handle_arguments(second_args, second_callee)

    # ---- variable-level conflicts (results and scalar arguments) ---------
    variable_conflicts: Set[Location] = set()
    first_var_writes = {var_location(first_target)} if first_target else set()
    second_var_writes = {var_location(second_target)} if second_target else set()
    first_var_reads = _scalar_reads(first_args, first_callee) | {
        var_location(name) for _, name in first_handles if name is not None
    }
    second_var_reads = _scalar_reads(second_args, second_callee) | {
        var_location(name) for _, name in second_handles if name is not None
    }
    variable_conflicts |= first_var_writes & (second_var_reads | second_var_writes)
    variable_conflicts |= second_var_writes & (first_var_reads | first_var_writes)

    # ---- handle-argument relatedness --------------------------------------
    if use_update_refinement and summaries is not None:
        first_summary = summaries[first_name]
        second_summary = summaries[second_name]
        first_update = [
            (formal, actual)
            for formal, actual in first_handles
            if first_summary.is_update(formal)
        ]
        second_update = [
            (formal, actual)
            for formal, actual in second_handles
            if second_summary.is_update(formal)
        ]
        checks = [(first_update, second_handles), (second_update, first_handles)]
    else:
        checks = [(first_handles, second_handles)]

    related_pairs: List[Tuple[str, str]] = []
    for update_side, other_side in checks:
        for _, update_actual in update_side:
            for _, other_actual in other_side:
                if update_actual is None or other_actual is None:
                    continue  # nil arguments access nothing
                if update_actual == other_actual or matrix.related(update_actual, other_actual):
                    pair = (update_actual, other_actual)
                    if pair not in related_pairs and (pair[1], pair[0]) not in related_pairs:
                        related_pairs.append(pair)

    interferes = bool(related_pairs or variable_conflicts)
    if not interferes:
        reason = (
            f"{first_name} and {second_name} operate on unrelated handles; "
            "the calls may execute in parallel"
        )
    else:
        parts = []
        if related_pairs:
            rendered = ", ".join(f"({a},{b})" for a, b in related_pairs)
            parts.append(f"related handle arguments: {rendered}")
        if variable_conflicts:
            rendered = ", ".join(sorted(str(c) for c in variable_conflicts))
            parts.append(f"variable conflicts: {rendered}")
        reason = "; ".join(parts)
    return CallInterferenceReport(
        interferes=interferes,
        related_handle_pairs=related_pairs,
        variable_conflicts=variable_conflicts,
        reason=reason,
    )


def calls_independent(
    first: ast.Stmt,
    second: ast.Stmt,
    matrix: PathMatrix,
    program: ast.Program,
    summaries: Optional[Dict[str, ProcedureSummary]] = None,
    use_update_refinement: bool = True,
) -> bool:
    """Convenience wrapper: True when the two calls may run in parallel."""
    return calls_interfere(
        first, second, matrix, program, summaries, use_update_refinement
    ).independent
