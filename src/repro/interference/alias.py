"""The alias functions A(a, f, p) and A^r(h, f, L, p).

Section 5.1: given a handle ``a``, a field kind ``f`` and a path matrix
``p``, the alias function returns the set of locations that may be aliased
to the location ``(a, f)``: ``(x, f)`` is a member iff ``p[a, x]`` (or, by
symmetry of "naming the same node", ``p[x, a]``) contains the path ``S`` or
``S?``.  ``(a, f)`` itself is always a member.

Section 5.3: the *relative* alias function anchors the aliases at the
live-in handles ``L`` instead: ``(l, f, r)`` is a member iff ``l ∈ L`` and
``p[l, h]`` contains the path expression ``r``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from ..analysis.matrix import PathMatrix
from ..analysis.pathset import PathSet
from ..sil.ast import Field
from .locations import (
    Location,
    LocationKind,
    RelativeLocation,
    field_location,
    relative_field_location,
)


def alias_set(handle: str, field: Field, matrix: PathMatrix) -> Set[Location]:
    """``A(a, f, p)`` — the Section 5.1 alias function.

    Returns every location ``(x, f)`` such that ``x`` may name the same node
    as ``a`` (including ``(a, f)`` itself).
    """
    result: Set[Location] = {field_location(handle, field)}
    for other in matrix.iter_handles():
        if other == handle:
            continue
        if matrix.get(handle, other).has_same or matrix.get(other, handle).has_same:
            result.add(field_location(other, field))
    return result


def must_alias_set(handle: str, field: Field, matrix: PathMatrix) -> Set[Location]:
    """Locations that *definitely* alias ``(a, f)`` (definite ``S`` entries)."""
    result: Set[Location] = {field_location(handle, field)}
    for other in matrix.iter_handles():
        if other == handle:
            continue
        if (
            matrix.get(handle, other).has_definite_same
            or matrix.get(other, handle).has_definite_same
        ):
            result.add(field_location(other, field))
    return result


def relative_alias_set(
    handle: str,
    field: Field,
    live_handles: Sequence[str],
    matrix: PathMatrix,
) -> Set[RelativeLocation]:
    """``A^r(h, f, L, p)`` — the Section 5.3 relative alias function.

    Expresses the location ``h.f`` in terms of access paths from the
    live-in handles ``L``: for every ``l ∈ L`` whose matrix entry
    ``p[l, h]`` is non-empty (or ``l = h``), the relative location
    ``(l, f, p[l, h])`` is returned.
    """
    result: Set[RelativeLocation] = set()
    for live in live_handles:
        if live == handle:
            result.add(relative_field_location(live, field, PathSet.same()))
            continue
        paths = matrix.get(live, handle)
        if not paths.is_empty:
            result.add(relative_field_location(live, field, paths))
    return result
