"""Read and write sets of basic statements (Figure 5 / Figure 10).

``R(s, p)`` is the set of locations possibly read by statement ``s`` when it
executes at a program point with path matrix ``p``; ``W(s, p)`` the set of
locations possibly written.  The table of Figure 5 covers the handle
statements; the value/scalar statements (used in Figure 6's examples) follow
the same pattern:

=======================  =============================================  =====================
statement                R(s, p)                                        W(s, p)
=======================  =============================================  =====================
``a := nil``             {}                                             {(a,var)}
``a := new()``           {}                                             {(a,var)}
``a := b``               {(b,var)}                                      {(a,var)}
``a := b.f``             {(b,var)} ∪ A(b,f,p)                           {(a,var)}
``a.f := b``             {(a,var), (b,var)}                             A(a,f,p)
``a.f := nil``           {(a,var)}                                      A(a,f,p)
``x := a.value``         {(a,var)} ∪ A(a,value,p)                       {(x,var)}
``a.value := e``         {(a,var)} ∪ vars(e)                            A(a,value,p)
``x := e``               vars(e)                                        {(x,var)}
=======================  =============================================  =====================

The *relative* versions (Figure 10) replace the alias function by the
relative alias function anchored at the live-in handles of the statement
sequences being compared (Section 5.3).
"""

from __future__ import annotations

from typing import Sequence, Set

from ..analysis.matrix import PathMatrix
from ..sil import ast
from .alias import alias_set, relative_alias_set
from .locations import (
    Location,
    RelativeLocation,
    relative_var_location,
    var_location,
)


def _expression_reads(expr: ast.Expr, matrix: PathMatrix) -> Set[Location]:
    """Locations read by an integer expression: variables plus any ``h.value`` reads."""
    reads = {var_location(name) for name in ast.names_in_expr(expr)}
    for sub in ast.walk_expr(expr):
        if isinstance(sub, ast.FieldAccess) and isinstance(sub.base, ast.Name):
            reads |= alias_set(sub.base.ident, sub.field_name, matrix)
    return reads


def _expression_reads_relative(
    expr: ast.Expr, matrix: PathMatrix, live_handles: Sequence[str]
) -> Set[RelativeLocation]:
    reads = {relative_var_location(name) for name in ast.names_in_expr(expr)}
    for sub in ast.walk_expr(expr):
        if isinstance(sub, ast.FieldAccess) and isinstance(sub.base, ast.Name):
            reads |= relative_alias_set(sub.base.ident, sub.field_name, live_handles, matrix)
    return reads


# ---------------------------------------------------------------------------
# Absolute read / write sets — R(s, p) and W(s, p)
# ---------------------------------------------------------------------------


def read_set(stmt: ast.Stmt, matrix: PathMatrix) -> Set[Location]:
    """``R(s, p)``: locations possibly read by ``s``."""
    if isinstance(stmt, (ast.AssignNil, ast.AssignNew)):
        return set()
    if isinstance(stmt, ast.CopyHandle):
        return {var_location(stmt.source)}
    if isinstance(stmt, ast.LoadField):
        return {var_location(stmt.source)} | alias_set(stmt.source, stmt.field_name, matrix)
    if isinstance(stmt, ast.StoreField):
        reads = {var_location(stmt.target)}
        if stmt.source is not None:
            reads.add(var_location(stmt.source))
        return reads
    if isinstance(stmt, ast.LoadValue):
        return {var_location(stmt.source)} | alias_set(stmt.source, ast.Field.VALUE, matrix)
    if isinstance(stmt, ast.StoreValue):
        return {var_location(stmt.target)} | _expression_reads(stmt.expr, matrix)
    if isinstance(stmt, ast.ScalarAssign):
        return _expression_reads(stmt.expr, matrix)
    if isinstance(stmt, ast.SkipStmt):
        return set()
    raise TypeError(f"read_set is only defined for basic statements, not {type(stmt).__name__}")


def write_set(stmt: ast.Stmt, matrix: PathMatrix) -> Set[Location]:
    """``W(s, p)``: locations possibly written by ``s``."""
    if isinstance(stmt, (ast.AssignNil, ast.AssignNew, ast.CopyHandle, ast.LoadField)):
        return {var_location(stmt.target)}
    if isinstance(stmt, ast.StoreField):
        return set(alias_set(stmt.target, stmt.field_name, matrix))
    if isinstance(stmt, ast.LoadValue):
        return {var_location(stmt.target)}
    if isinstance(stmt, ast.StoreValue):
        return set(alias_set(stmt.target, ast.Field.VALUE, matrix))
    if isinstance(stmt, ast.ScalarAssign):
        return {var_location(stmt.target)}
    if isinstance(stmt, ast.SkipStmt):
        return set()
    raise TypeError(f"write_set is only defined for basic statements, not {type(stmt).__name__}")


def condition_read_set(cond: ast.Expr, matrix: PathMatrix) -> Set[Location]:
    """Locations read when evaluating a condition (variables and fields)."""
    reads: Set[Location] = set()

    def visit(expr: ast.Expr) -> None:
        if isinstance(expr, ast.Name):
            reads.add(var_location(expr.ident))
        elif isinstance(expr, ast.FieldAccess):
            visit(expr.base)
            if isinstance(expr.base, ast.Name):
                reads.update(alias_set(expr.base.ident, expr.field_name, matrix))
        elif isinstance(expr, ast.BinOp):
            visit(expr.left)
            visit(expr.right)
        elif isinstance(expr, ast.UnOp):
            visit(expr.operand)

    visit(cond)
    return reads


# ---------------------------------------------------------------------------
# Relative read / write sets — R^r(s, p, L) and W^r(s, p, L) (Figure 10)
# ---------------------------------------------------------------------------


def relative_read_set(
    stmt: ast.Stmt, matrix: PathMatrix, live_handles: Sequence[str]
) -> Set[RelativeLocation]:
    """``R^r(s, p, L)``: relative locations possibly read by ``s``."""
    if isinstance(stmt, (ast.AssignNil, ast.AssignNew)):
        return set()
    if isinstance(stmt, ast.CopyHandle):
        return {relative_var_location(stmt.source)}
    if isinstance(stmt, ast.LoadField):
        return {relative_var_location(stmt.source)} | relative_alias_set(
            stmt.source, stmt.field_name, live_handles, matrix
        )
    if isinstance(stmt, ast.StoreField):
        reads = {relative_var_location(stmt.target)}
        if stmt.source is not None:
            reads.add(relative_var_location(stmt.source))
        return reads
    if isinstance(stmt, ast.LoadValue):
        return {relative_var_location(stmt.source)} | relative_alias_set(
            stmt.source, ast.Field.VALUE, live_handles, matrix
        )
    if isinstance(stmt, ast.StoreValue):
        return {relative_var_location(stmt.target)} | _expression_reads_relative(stmt.expr, matrix, live_handles)
    if isinstance(stmt, ast.ScalarAssign):
        return _expression_reads_relative(stmt.expr, matrix, live_handles)
    if isinstance(stmt, ast.SkipStmt):
        return set()
    raise TypeError(
        f"relative_read_set is only defined for basic statements, not {type(stmt).__name__}"
    )


def relative_write_set(
    stmt: ast.Stmt, matrix: PathMatrix, live_handles: Sequence[str]
) -> Set[RelativeLocation]:
    """``W^r(s, p, L)``: relative locations possibly written by ``s``."""
    if isinstance(stmt, (ast.AssignNil, ast.AssignNew, ast.CopyHandle, ast.LoadField)):
        return {relative_var_location(stmt.target)}
    if isinstance(stmt, ast.StoreField):
        return set(relative_alias_set(stmt.target, stmt.field_name, live_handles, matrix))
    if isinstance(stmt, ast.LoadValue):
        return {relative_var_location(stmt.target)}
    if isinstance(stmt, ast.StoreValue):
        return set(relative_alias_set(stmt.target, ast.Field.VALUE, live_handles, matrix))
    if isinstance(stmt, ast.ScalarAssign):
        return {relative_var_location(stmt.target)}
    if isinstance(stmt, ast.SkipStmt):
        return set()
    raise TypeError(
        f"relative_write_set is only defined for basic statements, not {type(stmt).__name__}"
    )
