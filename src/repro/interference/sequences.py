"""Interference between statement sequences (Section 5.3).

Given two statement sequences ``U = [u1..um]`` and ``V = [v1..vn]`` that
would start from the *same* program point (path matrix ``p``), decide
whether it is safe to execute them in parallel (``U || V``), i.e. whether
one sequence may write a location the other reads or writes.

All nodes accessed by either sequence are reached along some path from a
handle that is *live into* the sequences (used before being defined); the
analysis therefore describes accesses as **relative locations**
``(name, kind, access_path)`` anchored at those live-in handles, computes
relative read/write sets per statement (against the path matrix holding at
that statement, obtained by symbolically executing the sequence from ``p``)
and intersects them with a path-overlap test.  For TREE-shaped data the
empty relative interference set implies non-interference (the induction on
tree height sketched in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..analysis.limits import DEFAULT_LIMITS, AnalysisLimits
from ..analysis.matrix import PathMatrix
from ..analysis.paths import concat, paths_may_intersect
from ..analysis.pathset import PathSet
from ..analysis.transfer import apply_basic_statement
from ..sil import ast
from .locations import LocationKind, RelativeLocation
from .readwrite import relative_read_set, relative_write_set


# ---------------------------------------------------------------------------
# Live-in handles
# ---------------------------------------------------------------------------


def _handle_uses_and_defs(stmt: ast.BasicStmt) -> Tuple[List[str], List[str]]:
    """Handle variables used / defined by one basic statement."""
    if isinstance(stmt, (ast.AssignNil, ast.AssignNew)):
        return [], [stmt.target]
    if isinstance(stmt, ast.CopyHandle):
        return [stmt.source], [stmt.target]
    if isinstance(stmt, ast.LoadField):
        return [stmt.source], [stmt.target]
    if isinstance(stmt, ast.StoreField):
        uses = [stmt.target] + ([stmt.source] if stmt.source is not None else [])
        return uses, []
    if isinstance(stmt, ast.LoadValue):
        return [stmt.source], []
    if isinstance(stmt, ast.StoreValue):
        return [stmt.target], []
    if isinstance(stmt, (ast.ScalarAssign, ast.SkipStmt)):
        return [], []
    raise TypeError(f"not a basic statement: {type(stmt).__name__}")


def live_in_handles(*sequences: Sequence[ast.BasicStmt]) -> List[str]:
    """The set ``L``: handles used before being defined in any of the sequences."""
    live: List[str] = []
    for sequence in sequences:
        defined: Set[str] = set()
        for stmt in sequence:
            uses, defs = _handle_uses_and_defs(stmt)
            for use in uses:
                if use not in defined and use not in live:
                    live.append(use)
            defined.update(defs)
    return live


# ---------------------------------------------------------------------------
# Symbolic execution of a sequence (collecting per-statement matrices)
# ---------------------------------------------------------------------------


def matrices_along(
    sequence: Sequence[ast.BasicStmt],
    initial: PathMatrix,
    limits: AnalysisLimits = DEFAULT_LIMITS,
) -> List[PathMatrix]:
    """The path matrices ``[p1..pn]`` holding *before* each statement of the sequence."""
    matrices: List[PathMatrix] = []
    current = initial
    for stmt in sequence:
        matrices.append(current)
        current = apply_basic_statement(current, stmt, limits).matrix
    return matrices


# ---------------------------------------------------------------------------
# Relative read/write sets of whole sequences
# ---------------------------------------------------------------------------


def sequence_relative_reads(
    sequence: Sequence[ast.BasicStmt],
    matrices: Sequence[PathMatrix],
    live: Sequence[str],
) -> Set[RelativeLocation]:
    """``R^r_n([s1..sn], [p1..pn], L)``."""
    result: Set[RelativeLocation] = set()
    for stmt, matrix in zip(sequence, matrices):
        result |= relative_read_set(stmt, matrix, live)
    return result


def sequence_relative_writes(
    sequence: Sequence[ast.BasicStmt],
    matrices: Sequence[PathMatrix],
    live: Sequence[str],
) -> Set[RelativeLocation]:
    """``W^r_n([s1..sn], [p1..pn], L)``."""
    result: Set[RelativeLocation] = set()
    for stmt, matrix in zip(sequence, matrices):
        result |= relative_write_set(stmt, matrix, live)
    return result


# ---------------------------------------------------------------------------
# Overlap of relative locations
# ---------------------------------------------------------------------------


def relative_locations_overlap(
    first: RelativeLocation,
    second: RelativeLocation,
    initial: PathMatrix,
    limits: AnalysisLimits = DEFAULT_LIMITS,
) -> bool:
    """Could the two relative locations denote the same concrete location?

    * ``var`` locations overlap iff they name the same variable.
    * field locations require the same field kind and a node both access
      paths may reach: if the anchors are the same handle, the path
      languages must intersect; if the anchors differ, one access path must
      intersect the other *composed through* the anchors' relationship in
      the initial matrix (unrelated anchors of a TREE root disjoint
      sub-trees and can never overlap).
    """
    if first.kind is LocationKind.VAR or second.kind is LocationKind.VAR:
        return (
            first.kind is LocationKind.VAR
            and second.kind is LocationKind.VAR
            and first.name == second.name
        )
    if first.kind is not second.kind:
        return False

    if first.name == second.name:
        return any(
            paths_may_intersect(p, q) for p in first.access_path for q in second.access_path
        )

    # Different anchors: relate them through the initial path matrix.
    for left, right in ((first, second), (second, first)):
        between = initial.get(left.name, right.name)
        for bridge in between:
            for right_path in right.access_path:
                composed = (
                    right_path if bridge.is_same else concat(bridge, right_path, limits)
                )
                if any(paths_may_intersect(p, composed) for p in left.access_path):
                    return True
    return False


# ---------------------------------------------------------------------------
# The relative interference set
# ---------------------------------------------------------------------------


@dataclass
class SequenceInterferenceReport:
    """Result of checking two statement sequences for interference."""

    interferes: bool
    conflicts: List[Tuple[RelativeLocation, RelativeLocation]] = field(default_factory=list)
    live_handles: List[str] = field(default_factory=list)

    @property
    def independent(self) -> bool:
        return not self.interferes

    def __str__(self) -> str:  # pragma: no cover - trivial
        if not self.interferes:
            return "sequences do not interfere"
        rendered = "; ".join(f"{a} / {b}" for a, b in self.conflicts[:5])
        return f"sequences interfere: {rendered}"


def _cross_conflicts(
    writes: Set[RelativeLocation],
    others: Set[RelativeLocation],
    initial: PathMatrix,
    limits: AnalysisLimits,
) -> List[Tuple[RelativeLocation, RelativeLocation]]:
    conflicts = []
    for write in writes:
        for other in others:
            if relative_locations_overlap(write, other, initial, limits):
                conflicts.append((write, other))
    return conflicts


def sequences_interfere(
    first: Sequence[ast.BasicStmt],
    second: Sequence[ast.BasicStmt],
    initial: PathMatrix,
    limits: AnalysisLimits = DEFAULT_LIMITS,
) -> SequenceInterferenceReport:
    """``I^r(U, P, V, Q, L)`` — may the two sequences interfere (Section 5.3)?"""
    live = live_in_handles(first, second)
    first_matrices = matrices_along(first, initial, limits)
    second_matrices = matrices_along(second, initial, limits)

    first_reads = sequence_relative_reads(first, first_matrices, live)
    first_writes = sequence_relative_writes(first, first_matrices, live)
    second_reads = sequence_relative_reads(second, second_matrices, live)
    second_writes = sequence_relative_writes(second, second_matrices, live)

    conflicts = _cross_conflicts(first_writes, second_reads | second_writes, initial, limits)
    conflicts += _cross_conflicts(second_writes, first_reads | first_writes, initial, limits)

    # Remove duplicate symmetric pairs.
    unique: List[Tuple[RelativeLocation, RelativeLocation]] = []
    seen = set()
    for a, b in conflicts:
        key = frozenset((a, b))
        if key not in seen:
            seen.add(key)
            unique.append((a, b))

    return SequenceInterferenceReport(
        interferes=bool(unique), conflicts=unique, live_handles=list(live)
    )


def sequences_independent(
    first: Sequence[ast.BasicStmt],
    second: Sequence[ast.BasicStmt],
    initial: PathMatrix,
    limits: AnalysisLimits = DEFAULT_LIMITS,
) -> bool:
    """Convenience wrapper: True when ``U || V`` is safe from ``initial``."""
    return sequences_interfere(first, second, initial, limits).independent
