"""Interference between basic statements (Section 5.1).

The interference set ``I(si, sj, p)`` is the set of locations through which
the two statements may interfere when executed at a program point with path
matrix ``p``::

    I(si, sj, p) = [ W(si,p) ∩ ( R(sj,p) ∪ W(sj,p) ) ]
                 ∪ [ W(sj,p) ∩ ( R(si,p) ∪ W(si,p) ) ]

If the set is empty, the statements may safely execute in parallel.  The
n-statement generalization accumulates the read/write sets of the prefix
``[s1, ..., sn]`` and intersects them with each newly added statement —
exactly the incremental scheme the paper describes for growing a parallel
group one statement at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple

from ..analysis.matrix import PathMatrix
from ..sil import ast
from .locations import Location
from .readwrite import read_set, write_set


@dataclass
class InterferenceReport:
    """The result of checking a group of statements for pairwise interference."""

    #: Locations through which some pair of statements interferes.
    locations: Set[Location] = field(default_factory=set)
    #: The pairs (i, j) of statement indices that interfere.
    pairs: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def interferes(self) -> bool:
        return bool(self.locations)

    @property
    def independent(self) -> bool:
        return not self.locations

    def __str__(self) -> str:  # pragma: no cover - trivial
        if not self.locations:
            return "no interference"
        locations = ", ".join(sorted(str(location) for location in self.locations))
        return f"interference through {{{locations}}}"


def interference_set(
    first: ast.Stmt, second: ast.Stmt, matrix: PathMatrix
) -> Set[Location]:
    """``I(si, sj, p)`` — locations through which two statements may interfere."""
    first_reads = read_set(first, matrix)
    first_writes = write_set(first, matrix)
    second_reads = read_set(second, matrix)
    second_writes = write_set(second, matrix)
    return (first_writes & (second_reads | second_writes)) | (
        second_writes & (first_reads | first_writes)
    )


def statements_interfere(first: ast.Stmt, second: ast.Stmt, matrix: PathMatrix) -> bool:
    """True if the two statements may interfere at a point with matrix ``p``."""
    return bool(interference_set(first, second, matrix))


def group_interference(stmts: Sequence[ast.Stmt], matrix: PathMatrix) -> InterferenceReport:
    """Check all pairs among ``stmts`` (the n-statement generalization)."""
    report = InterferenceReport()
    for i in range(len(stmts)):
        for j in range(i + 1, len(stmts)):
            locations = interference_set(stmts[i], stmts[j], matrix)
            if locations:
                report.locations |= locations
                report.pairs.append((i, j))
    return report


def can_execute_in_parallel(stmts: Sequence[ast.Stmt], matrix: PathMatrix) -> bool:
    """True if the statements are pairwise non-interfering (Figure 4 transformation)."""
    return group_interference(stmts, matrix).independent


def extend_parallel_group(
    group: Sequence[ast.Stmt], candidate: ast.Stmt, matrix: PathMatrix
) -> Set[Location]:
    """``I_n([s1..sn], s_{n+1}, p)`` — can ``candidate`` join the parallel group?

    Returns the (possibly empty) set of locations through which the
    candidate interferes with the statements already in the group.  The
    paper's incremental scheme adds statements to the group until this set
    becomes non-empty.
    """
    conflicts: Set[Location] = set()
    for existing in group:
        conflicts |= interference_set(existing, candidate, matrix)
    return conflicts


def greedy_parallel_groups(
    stmts: Sequence[ast.Stmt], matrix: PathMatrix
) -> List[List[ast.Stmt]]:
    """Greedily partition a straight-line statement list into parallel groups.

    Scans left to right, adding each statement to the current group while it
    does not interfere with any statement already in the group; otherwise a
    new group starts.  (The matrix used for every membership test is the
    matrix at the point *before the group*, which is the condition under
    which the paper's transformation of Figure 4 is valid.)
    """
    groups: List[List[ast.Stmt]] = []
    current: List[ast.Stmt] = []
    for stmt in stmts:
        if not current:
            current = [stmt]
            continue
        if extend_parallel_group(current, stmt, matrix):
            groups.append(current)
            current = [stmt]
        else:
            current.append(stmt)
    if current:
        groups.append(current)
    return groups
