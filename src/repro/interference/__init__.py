"""Interference analysis (Section 5): basic statements, procedure calls, sequences."""

from .alias import alias_set, must_alias_set, relative_alias_set
from .basic import (
    InterferenceReport,
    can_execute_in_parallel,
    extend_parallel_group,
    greedy_parallel_groups,
    group_interference,
    interference_set,
    statements_interfere,
)
from .calls import CallInterferenceReport, calls_independent, calls_interfere
from .locations import (
    Location,
    LocationKind,
    RelativeLocation,
    field_location,
    relative_field_location,
    relative_var_location,
    var_location,
)
from .readwrite import (
    condition_read_set,
    read_set,
    relative_read_set,
    relative_write_set,
    write_set,
)
from .sequences import (
    SequenceInterferenceReport,
    live_in_handles,
    matrices_along,
    relative_locations_overlap,
    sequence_relative_reads,
    sequence_relative_writes,
    sequences_independent,
    sequences_interfere,
)

__all__ = [
    "Location",
    "LocationKind",
    "RelativeLocation",
    "var_location",
    "field_location",
    "relative_var_location",
    "relative_field_location",
    "alias_set",
    "must_alias_set",
    "relative_alias_set",
    "read_set",
    "write_set",
    "condition_read_set",
    "relative_read_set",
    "relative_write_set",
    "interference_set",
    "statements_interfere",
    "group_interference",
    "can_execute_in_parallel",
    "extend_parallel_group",
    "greedy_parallel_groups",
    "InterferenceReport",
    "calls_interfere",
    "calls_independent",
    "CallInterferenceReport",
    "sequences_interfere",
    "sequences_independent",
    "SequenceInterferenceReport",
    "live_in_handles",
    "matrices_along",
    "sequence_relative_reads",
    "sequence_relative_writes",
    "relative_locations_overlap",
]
