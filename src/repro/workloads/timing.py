"""Wall-clock timing and profiling harness for workload analyses.

The op-count trajectory in ``BENCH_analysis.json`` (worklist pops, cache
hits, row deltas) says *how much* work the engine did, but not where the
time goes — and representation changes like the hash-consed matrix layer
can shift cost between counters without the counters noticing.  This
module adds the missing wall-clock axis:

* :func:`time_items` — analyze each ``(name, source)`` workload ``reps``
  times against a fresh :class:`~repro.analysis.engine.BatchAnalyzer`
  (cold per-rep transfer cache; the process-global interned path/matrix
  domain stays warm, as it does in production) and record the **median**
  wall time per workload, plus the **peak interning-table sizes** observed
  across the run — the memory-side cost of hash-consing.
* an optional cProfile pass per workload (``profile_dir``): one extra
  analysis run under the profiler, with the top-20 cumulative-time rows
  written to ``<profile_dir>/<workload>.txt``.

``python -m repro bench --time [--profile]`` drives this and folds the
result into the ``timing`` section of the bench artifact; the pytest bench
(``benchmarks/test_ext_analysis_cost.py``) does the same for the committed
``BENCH_analysis.json``.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import statistics
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.limits import DEFAULT_LIMITS, LimitsLike
from ..analysis.pathset import intern_table_sizes
from ..sil.normalize import parse_and_normalize

#: Default analyses per workload for the median (odd, so the median is a
#: real sample).
DEFAULT_REPS = 5

#: Rows printed to a profile artifact (cumulative-time order).
PROFILE_TOP = 20


def time_items(
    items: Sequence[Tuple[str, str]],
    limits: LimitsLike = DEFAULT_LIMITS,
    reps: int = DEFAULT_REPS,
    profile_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Measure per-workload analysis wall time over ``(name, source)`` items.

    Parsing and type checking happen once per workload, *outside* the
    timed region — the harness measures the analysis engine, not the front
    end.  Each rep runs against a fresh ``BatchAnalyzer`` so the in-memory
    transfer cache is cold (medians reflect computation, not replay);
    interning tables are process-global and sampled after every workload
    for their peak sizes.  Workloads that fail to load are reported under
    ``failures`` instead of aborting the harness.
    """
    from ..analysis.engine import BatchAnalyzer

    reps = max(1, int(reps))
    workloads: Dict[str, Dict[str, object]] = {}
    failures: Dict[str, str] = {}
    peaks: Dict[str, int] = {}
    started = time.perf_counter()
    for name, text in items:
        try:
            program, info = parse_and_normalize(text)
        except Exception as error:  # noqa: BLE001 - surfaced per workload
            failures[name] = f"{type(error).__name__}: {error}"
            continue
        samples = []
        for _ in range(reps):
            batch = BatchAnalyzer(limits=limits)
            rep_started = time.perf_counter()
            batch.analyze(program, info)
            samples.append(time.perf_counter() - rep_started)
        for table, size in intern_table_sizes().items():
            peaks[table] = max(peaks.get(table, 0), size)
        workloads[name] = {
            "reps": reps,
            "median_seconds": round(statistics.median(samples), 6),
            "min_seconds": round(min(samples), 6),
            "max_seconds": round(max(samples), 6),
        }
        if profile_dir is not None:
            _profile_workload(name, program, info, limits, profile_dir)
    return {
        "reps": reps,
        "seconds": round(time.perf_counter() - started, 4),
        "workloads": workloads,
        "failures": failures,
        "intern_tables_peak": peaks,
        "profile_dir": profile_dir,
    }


def _profile_workload(name: str, program, info, limits: LimitsLike, profile_dir: str) -> Path:
    """One profiled analysis run; writes the top-20 table to the artifact dir."""
    from ..analysis.engine import BatchAnalyzer

    batch = BatchAnalyzer(limits=limits)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        batch.analyze(program, info)
    finally:
        profiler.disable()
    buffer = io.StringIO()
    pstats.Stats(profiler, stream=buffer).sort_stats("cumulative").print_stats(PROFILE_TOP)
    directory = Path(profile_dir)
    directory.mkdir(parents=True, exist_ok=True)
    artifact = directory / f"{name}.txt"
    artifact.write_text(buffer.getvalue())
    return artifact


def format_timing(timing: Dict[str, object]) -> str:
    """Human-readable rendering of a :func:`time_items` result."""
    lines = [f"{'workload':24s} {'median':>10s} {'min':>10s} {'max':>10s}"]
    for name, row in timing["workloads"].items():
        lines.append(
            f"{name:24s} {row['median_seconds']:10.6f} "
            f"{row['min_seconds']:10.6f} {row['max_seconds']:10.6f}"
        )
    for name, error in timing["failures"].items():
        lines.append(f"{name:24s} FAIL {error}")
    peaks = timing["intern_tables_peak"]
    if peaks:
        lines.append(
            "peak interning tables: "
            + " ".join(f"{table}={size}" for table, size in sorted(peaks.items()))
        )
    return "\n".join(lines)
