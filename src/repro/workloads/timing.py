"""Wall-clock timing and profiling harness for workload analyses.

The op-count trajectory in ``BENCH_analysis.json`` (worklist pops, cache
hits, row deltas) says *how much* work the engine did, but not where the
time goes — and representation changes like the hash-consed matrix layer
can shift cost between counters without the counters noticing.  This
module adds the missing wall-clock axis:

* :func:`time_items` — analyze each ``(name, source)`` workload ``reps``
  times against a fresh :class:`~repro.analysis.engine.BatchAnalyzer`
  (cold per-rep transfer cache; the process-global interned path/matrix
  domain stays warm, as it does in production) and record the **cold
  median** wall time per workload, the **warm median** (same analyzer,
  transfer cache primed — the replay path PR 5 optimised), and the
  **peak interning-table sizes** observed across the run — the
  memory-side cost of hash-consing.
* a **calibration loop** — a fixed pure-Python busy loop timed alongside
  the workloads.  Committed baselines and CI runners have different
  absolute speeds; dividing both sides' medians by their own calibration
  time turns the cold-median ratchet into a machine-portable comparison.
* an optional cProfile pass per workload (``profile_dir``): one extra
  analysis run under the profiler, with the top-20 cumulative-time rows
  written to ``<profile_dir>/<workload>.txt`` — plus an **aggregated
  cross-workload table** (top functions by total tottime over *all*
  workloads) written to ``<profile_dir>/_aggregate.txt`` and returned in
  the report, so the next hot spot is readable at a glance.
* :func:`check_cold_medians` — the ratchet: compare a fresh timing
  report's cold medians against a committed baseline with a tolerance,
  failing when the (calibration-normalized) total regresses.

``python -m repro bench --time [--profile] [--ratchet BASELINE]`` drives
this and folds the result into the ``timing`` section of the bench
artifact; the pytest bench (``benchmarks/test_ext_analysis_cost.py``)
does the same for the committed ``BENCH_analysis.json``.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import statistics
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.limits import DEFAULT_LIMITS, LimitsLike
from ..analysis.pathset import intern_table_sizes
from ..obs.trace import span, stopwatch
from ..sil.normalize import parse_and_normalize

#: Default analyses per workload for the median (odd, so the median is a
#: real sample).
DEFAULT_REPS = 5

#: Rows printed to a profile artifact (cumulative-time order).
PROFILE_TOP = 20

#: Default headroom for the cold-median ratchet.  Generous because CI
#: runners are noisy even after calibration normalization; a genuine
#: representation regression (the interning tax was 10-15%) compounds
#: across every workload and clears this comfortably.
DEFAULT_RATCHET_TOLERANCE = 0.5


def measure_calibration(reps: int = 3) -> float:
    """Wall time of a fixed pure-Python busy loop (interpreter speed probe).

    Deterministic work — integer arithmetic plus dict churn, the same mix
    the analysis hot loops are made of — so the number depends only on the
    interpreter and machine, never on the workload population.  The *min*
    over a few reps is reported: it is the least noise-sensitive estimate
    of the machine's speed, which is all the ratchet needs.
    """
    samples = []
    for _ in range(max(1, reps)):
        started = time.perf_counter()
        accumulator = 0
        table: Dict[int, int] = {}
        for i in range(150_000):
            accumulator += i & 7
            if not i & 1023:
                table[i] = accumulator
        samples.append(time.perf_counter() - started)
    return min(samples)


def time_items(
    items: Sequence[Tuple[str, str]],
    limits: LimitsLike = DEFAULT_LIMITS,
    reps: int = DEFAULT_REPS,
    profile_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Measure per-workload analysis wall time over ``(name, source)`` items.

    Parsing and type checking happen once per workload, *outside* the
    timed region — the harness measures the analysis engine, not the front
    end.  Each **cold** rep runs against a fresh ``BatchAnalyzer`` so the
    in-memory transfer cache is cold (``median_seconds`` reflects
    computation, not replay); the **warm** reps re-analyze against one
    primed analyzer (``warm_median_seconds`` reflects the memoized replay
    path).  Interning tables are process-global and sampled after every
    workload for their peak sizes.  Workloads that fail to load are
    reported under ``failures`` instead of aborting the harness.
    """
    from ..analysis.engine import BatchAnalyzer

    reps = max(1, int(reps))
    workloads: Dict[str, Dict[str, object]] = {}
    failures: Dict[str, str] = {}
    peaks: Dict[str, int] = {}
    aggregate_profile: Optional[pstats.Stats] = None
    clock = stopwatch("bench.time_items", {"workloads": len(items), "reps": reps})
    with clock:
        for name, text in items:
            try:
                program, info = parse_and_normalize(text)
            except Exception as error:  # noqa: BLE001 - surfaced per workload
                failures[name] = f"{type(error).__name__}: {error}"
                continue
            # The rep loops keep raw ``perf_counter`` brackets: the samples
            # *are* the measurement, and a span inside the timed region
            # would tax exactly what the ratchet is holding steady.  The
            # span wraps the workload from outside instead.
            with span("bench.workload", {"workload": name}):
                samples = []
                for _ in range(reps):
                    batch = BatchAnalyzer(limits=limits)
                    rep_started = time.perf_counter()
                    batch.analyze(program, info)
                    samples.append(time.perf_counter() - rep_started)
                warm_batch = BatchAnalyzer(limits=limits)
                warm_batch.analyze(program, info)  # prime the transfer cache
                warm_samples = []
                for _ in range(reps):
                    rep_started = time.perf_counter()
                    warm_batch.analyze(program, info)
                    warm_samples.append(time.perf_counter() - rep_started)
            for table, size in intern_table_sizes().items():
                peaks[table] = max(peaks.get(table, 0), size)
            workloads[name] = {
                "reps": reps,
                "median_seconds": round(statistics.median(samples), 6),
                "min_seconds": round(min(samples), 6),
                "max_seconds": round(max(samples), 6),
                "warm_median_seconds": round(statistics.median(warm_samples), 6),
                "warm_min_seconds": round(min(warm_samples), 6),
            }
            if profile_dir is not None:
                profiled = _profile_workload(name, program, info, limits, profile_dir)
                if aggregate_profile is None:
                    aggregate_profile = profiled
                else:
                    aggregate_profile.add(profiled)
    report: Dict[str, object] = {
        "reps": reps,
        "seconds": round(clock.seconds, 4),
        "calibration_seconds": round(measure_calibration(), 6),
        "workloads": workloads,
        "failures": failures,
        "intern_tables_peak": peaks,
        "profile_dir": profile_dir,
    }
    if aggregate_profile is not None and profile_dir is not None:
        report["profile_top"] = _write_aggregate_profile(aggregate_profile, profile_dir)
    return report


def _profile_workload(
    name: str, program, info, limits: LimitsLike, profile_dir: str
) -> pstats.Stats:
    """One profiled analysis run; writes the top-20 table to the artifact dir.

    Returns the ``pstats.Stats`` so the caller can fold it into the
    cross-workload aggregate.
    """
    from ..analysis.engine import BatchAnalyzer

    batch = BatchAnalyzer(limits=limits)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        batch.analyze(program, info)
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(PROFILE_TOP)
    directory = Path(profile_dir)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{name}.txt").write_text(buffer.getvalue())
    return stats


def _write_aggregate_profile(
    aggregate: pstats.Stats, profile_dir: str, top: int = PROFILE_TOP
) -> List[Dict[str, object]]:
    """Cross-workload hot-spot table: top functions by summed tottime.

    Per-workload profiles answer "why is *this* workload slow"; the
    aggregate answers "where does the population's time go" — which is
    the question a representation change has to face.  Written to
    ``<profile_dir>/_aggregate.txt`` and returned as rows for the CLI
    and the bench artifact.
    """
    rows: List[Dict[str, object]] = []
    for (filename, lineno, function), (cc, ncalls, tottime, cumtime, _callers) in (
        aggregate.stats.items()  # type: ignore[attr-defined]
    ):
        location = f"{Path(filename).name}:{lineno}({function})"
        rows.append(
            {
                "function": location,
                "ncalls": ncalls,
                "tottime": round(tottime, 6),
                "cumtime": round(cumtime, 6),
            }
        )
    rows.sort(key=lambda row: row["tottime"], reverse=True)
    rows = rows[:top]
    buffer = io.StringIO()
    aggregate.stream = buffer
    aggregate.sort_stats("tottime").print_stats(top)
    directory = Path(profile_dir)
    directory.mkdir(parents=True, exist_ok=True)
    text = (
        "aggregated cross-workload profile (sum over all profiled workloads)\n\n"
        + format_profile_top(rows)
        + "\n\nfull pstats table (tottime order):\n"
        + buffer.getvalue()
    )
    (directory / "_aggregate.txt").write_text(text)
    return rows


def format_profile_top(rows: Sequence[Dict[str, object]]) -> str:
    """Render the aggregated profile rows as an aligned table."""
    lines = [f"{'tottime':>10s} {'cumtime':>10s} {'ncalls':>10s}  function"]
    for row in rows:
        lines.append(
            f"{row['tottime']:10.4f} {row['cumtime']:10.4f} "
            f"{row['ncalls']:>10} {'':1s} {row['function']}"
        )
    return "\n".join(lines)


#: Default program sizes (walker counts) for the edit-replay bench.
DEFAULT_EDIT_SIZES = (4, 8, 16)

#: Default edit-script lengths for the edit-replay bench.
DEFAULT_EDIT_COUNTS = (1, 2, 4)


def measure_edit_replay(
    sizes: Sequence[int] = DEFAULT_EDIT_SIZES,
    edit_counts: Sequence[int] = DEFAULT_EDIT_COUNTS,
    seed: int = 0,
    limits: LimitsLike = DEFAULT_LIMITS,
    reps: int = 3,
    kinds: Sequence[str] = ("insert",),
) -> Dict[str, object]:
    """The edit-replay bench: re-analysis cost vs. edit size vs. program size.

    For every program size ``n`` (the walker count of
    :func:`~repro.workloads.generators.make_edit_bench_scenario`) and every
    edit-script length ``k``, measure the **cold** solve median and the
    **warm dirty-seeded re-analysis** median of an
    :class:`~repro.analysis.reanalysis.IncrementalSession` replaying a
    seeded ``k``-step edit script.  The point of the grid: along the size
    axis (fixed ``k``) cold time grows with ``n`` while warm time stays
    flat — re-analysis cost scales with the edit, not the program — and the
    ``scaling`` summary states both ratios so the bench harness can assert
    the separation.  Every warm cell also reports the reuse counters
    (``summaries_reused`` / ``procedures_reanalyzed``) and verifies the
    warm digest against the cold digest of the edited program.
    """
    reps = max(1, int(reps))
    sizes = tuple(sorted(set(int(n) for n in sizes)))
    edit_counts = tuple(sorted(set(int(k) for k in edit_counts)))
    cells: Dict[str, Dict[str, object]] = {}
    clock = stopwatch(
        "bench.edit_replay", {"sizes": len(sizes), "edit_counts": len(edit_counts)}
    )
    with clock:
        _measure_edit_replay_cells(
            cells, sizes, edit_counts, seed, limits, reps, kinds
        )
    smallest, largest = sizes[0], sizes[-1]
    base_k = edit_counts[0]
    small_cell = cells[f"n{smallest}_k{base_k}"]
    large_cell = cells[f"n{largest}_k{base_k}"]
    fixed_size = cells[f"n{largest}_k{edit_counts[-1]}"]
    cold_ratio = _safe_ratio(
        large_cell["cold_median_seconds"], small_cell["cold_median_seconds"]
    )
    warm_ratio = _safe_ratio(
        large_cell["warm_median_seconds"], small_cell["warm_median_seconds"]
    )
    edit_ratio = _safe_ratio(
        fixed_size["warm_median_seconds"], large_cell["warm_median_seconds"]
    )
    return {
        "sizes": list(sizes),
        "edit_counts": list(edit_counts),
        "reps": reps,
        "seed": seed,
        "kinds": list(kinds),
        "seconds": round(clock.seconds, 4),
        "cells": cells,
        "scaling": {
            # Size axis at the smallest edit count: cold grows, warm should not.
            "cold_size_ratio": cold_ratio,
            "warm_size_ratio": warm_ratio,
            # Edit axis at the largest size: warm grows with the script length.
            "warm_edit_ratio": edit_ratio,
            "scales_with_edit_not_program": bool(
                cold_ratio is not None
                and warm_ratio is not None
                and warm_ratio < cold_ratio
            ),
        },
    }


def _measure_edit_replay_cells(
    cells: Dict[str, Dict[str, object]],
    sizes: Sequence[int],
    edit_counts: Sequence[int],
    seed: int,
    limits: LimitsLike,
    reps: int,
    kinds: Sequence[str],
) -> None:
    """The measurement grid of :func:`measure_edit_replay` (cells in place)."""
    from ..analysis.reanalysis import IncrementalSession
    from .generators import generate_edited_pair, make_edit_bench_scenario

    for size in sizes:
        scenario = make_edit_bench_scenario(size, seed=seed)
        old_program, old_info = parse_and_normalize(scenario.source)
        cold_samples = []
        for _ in range(reps):
            session = IncrementalSession(limits=limits)
            rep_started = time.perf_counter()
            session.analyze(old_program, old_info)
            cold_samples.append(time.perf_counter() - rep_started)
            session.close()
        cold_median = statistics.median(cold_samples)
        for count in edit_counts:
            pair = generate_edited_pair(scenario.source, seed + count, edits=count, kinds=kinds)
            new_program, new_info = parse_and_normalize(pair.new_source)
            warm_samples = []
            reused = reanalyzed = dirty = 0
            verified = True
            for _ in range(reps):
                session = IncrementalSession(limits=limits)
                session.analyze(old_program, old_info)  # prime, untimed
                report = session.reanalyze(new_program, new_info, verify=True)
                warm_samples.append(report.seconds)
                reused = report.summaries_reused
                reanalyzed = len(report.procedures_reanalyzed)
                dirty = report.dirty_seed_size
                verified = verified and bool(report.verified)
                session.close()
            cells[f"n{size}_k{count}"] = {
                "size": size,
                "edits": count,
                "cold_median_seconds": round(cold_median, 6),
                "warm_median_seconds": round(statistics.median(warm_samples), 6),
                "warm_min_seconds": round(min(warm_samples), 6),
                "summaries_reused": reused,
                "procedures_reanalyzed": reanalyzed,
                "procedures_total": len(new_program.all_callables),
                "dirty_seed_size": dirty,
                "verified": verified,
                "script": pair.script.as_dict(),
            }


def _safe_ratio(numerator: float, denominator: float) -> Optional[float]:
    return round(numerator / denominator, 4) if denominator else None


def format_edit_replay(report: Dict[str, object]) -> str:
    """Human-readable rendering of a :func:`measure_edit_replay` result."""
    lines = [
        f"{'cell':12s} {'cold-med':>10s} {'warm-med':>10s} "
        f"{'reused':>7s} {'re-an':>6s} {'total':>6s} {'ok':>3s}"
    ]
    for key, cell in report["cells"].items():
        lines.append(
            f"{key:12s} {cell['cold_median_seconds']:10.6f} "
            f"{cell['warm_median_seconds']:10.6f} {cell['summaries_reused']:>7} "
            f"{cell['procedures_reanalyzed']:>6} {cell['procedures_total']:>6} "
            f"{'yes' if cell['verified'] else 'NO':>3s}"
        )
    scaling = report["scaling"]
    lines.append(
        f"size-axis ratios (cold {scaling['cold_size_ratio']} vs warm "
        f"{scaling['warm_size_ratio']}), edit-axis warm ratio "
        f"{scaling['warm_edit_ratio']} -> "
        + (
            "cost scales with edit size"
            if scaling["scales_with_edit_not_program"]
            else "NO separation"
        )
    )
    return "\n".join(lines)


def check_cold_medians(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_RATCHET_TOLERANCE,
) -> Dict[str, object]:
    """The cold-median ratchet: fail when cold analysis time regresses.

    Compares the cold ``median_seconds`` of every workload present in both
    reports, normalized by each side's own ``calibration_seconds`` (when
    both carry one) so a committed baseline measured on one machine gates
    runs on another.  The verdict is on the **total** over the shared
    workloads — per-workload medians jitter, but a representation
    regression taxes every workload, so the sum is both the most stable
    and the most sensitive statistic.  Returns a report dict whose
    ``regressed`` flag the CLI turns into a nonzero exit.
    """
    current_workloads: Dict[str, Dict] = current.get("workloads", {})  # type: ignore[assignment]
    baseline_workloads: Dict[str, Dict] = baseline.get("workloads", {})  # type: ignore[assignment]
    shared = [name for name in baseline_workloads if name in current_workloads]

    current_cal = current.get("calibration_seconds")
    baseline_cal = baseline.get("calibration_seconds")
    # Express the current run in the baseline machine's clock.
    scale = 1.0
    if current_cal and baseline_cal:
        scale = float(baseline_cal) / float(current_cal)

    rows = []
    current_total = 0.0
    baseline_total = 0.0
    for name in shared:
        normalized = current_workloads[name]["median_seconds"] * scale
        reference = baseline_workloads[name]["median_seconds"]
        current_total += normalized
        baseline_total += reference
        rows.append(
            {
                "name": name,
                "current_seconds": round(normalized, 6),
                "baseline_seconds": round(reference, 6),
                "ratio": round(normalized / reference, 4) if reference else None,
            }
        )
    total_ratio = current_total / baseline_total if baseline_total else None
    return {
        "workloads_compared": len(shared),
        "calibration_scale": round(scale, 4),
        "tolerance": tolerance,
        "current_total_seconds": round(current_total, 6),
        "baseline_total_seconds": round(baseline_total, 6),
        "total_ratio": round(total_ratio, 4) if total_ratio is not None else None,
        "regressed": bool(
            total_ratio is not None and total_ratio > 1.0 + tolerance
        ),
        "rows": rows,
    }


def format_ratchet(result: Dict[str, object]) -> str:
    """Human-readable rendering of a :func:`check_cold_medians` verdict."""
    lines = [
        f"{'workload':24s} {'current':>10s} {'baseline':>10s} {'ratio':>7s}"
    ]
    for row in result["rows"]:
        ratio = f"{row['ratio']:.2f}" if row["ratio"] is not None else "n/a"
        lines.append(
            f"{row['name']:24s} {row['current_seconds']:10.6f} "
            f"{row['baseline_seconds']:10.6f} {ratio:>7s}"
        )
    total_ratio = result["total_ratio"]
    verdict = "REGRESSED" if result["regressed"] else "ok"
    lines.append(
        f"{'TOTAL':24s} {result['current_total_seconds']:10.6f} "
        f"{result['baseline_total_seconds']:10.6f} "
        f"{total_ratio if total_ratio is not None else 'n/a':>7} "
        f"(tolerance +{result['tolerance']:.0%}, calibration scale "
        f"{result['calibration_scale']}) -> {verdict}"
    )
    return "\n".join(lines)


def format_timing(timing: Dict[str, object]) -> str:
    """Human-readable rendering of a :func:`time_items` result."""
    lines = [
        f"{'workload':24s} {'cold-med':>10s} {'cold-min':>10s} "
        f"{'cold-max':>10s} {'warm-med':>10s}"
    ]
    for name, row in timing["workloads"].items():
        warm = row.get("warm_median_seconds")
        warm_text = f"{warm:10.6f}" if warm is not None else f"{'n/a':>10s}"
        lines.append(
            f"{name:24s} {row['median_seconds']:10.6f} "
            f"{row['min_seconds']:10.6f} {row['max_seconds']:10.6f} {warm_text}"
        )
    for name, error in timing["failures"].items():
        lines.append(f"{name:24s} FAIL {error}")
    calibration = timing.get("calibration_seconds")
    if calibration:
        lines.append(f"calibration loop: {calibration:.6f}s")
    peaks = timing["intern_tables_peak"]
    if peaks:
        lines.append(
            "peak interning tables: "
            + " ".join(f"{table}={size}" for table, size in sorted(peaks.items()))
        )
    return "\n".join(lines)
