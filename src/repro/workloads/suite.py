"""The workload suite: SIL programs used by the examples, tests and benches.

* :data:`ADD_AND_REVERSE` — the paper's running example (Figure 7), extended
  with a ``build`` function so it is executable end to end.
* :data:`TREE_ADD` — recursive tree sum (the classic ``treeadd`` kernel).
* :data:`TREE_MIRROR` — the ``reverse`` procedure on its own (structure
  modification).
* :data:`TREE_COPY` — builds a fresh copy of a tree (allocation-heavy).
* :data:`BST_BUILD` — binary-search-tree insertion followed by a sum
  (a loop + data-dependent shape).
* :data:`LIST_WALK` — Figure 3's ``while l.left <> nil`` list walk.
* :data:`BITONIC_SORT` — bitonic sort over the leaves of a perfect binary
  tree (the divide-and-conquer call structure of the adaptive bitonic sort
  the paper's conclusion mentions).
* :data:`DAG_SHARING` / :data:`CYCLE_BUG` — programs that deliberately break
  the TREE discipline, used by the structure-verification bench/example.

Each program builds its own input structure inside ``main`` (parameterized
by a ``depth`` constant that callers rewrite via :func:`with_depth`), so the
whole pipeline — parse, analyze, parallelize, execute — runs without any
external input.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import re
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from ..faults import (
    InjectedWorkerCrash,
    current_fault_plan,
    fault_fire,
    fault_scope,
    injected_counts,
    install_fault_plan,
)
from ..obs.metrics import DEFAULT_COUNT_BUCKETS, MetricsRegistry, latency_tails
from ..obs.trace import current_tracer, span, stopwatch
from ..sil import ast
from ..sil.normalize import parse_and_normalize
from ..sil.typecheck import TypeInfo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.context import AnalysisStats
    from ..analysis.engine import AnalysisResult
    from ..analysis.limits import AnalysisLimits, LimitsLike
    from ..cache.backend import CacheConfig
    from ..faults import FaultPlan
    from .generators import Scenario

#: One shard's work order: (index, (name, source) pairs, limits, cache
#: config, eviction policy, fault plan, attempt).  ``attempt`` starts at 0
#: and counts up on every requeue of the same workloads after a worker
#: crash, bounding retries and giving the crash-injection site a fresh
#: deterministic draw per attempt.
ShardPayload = Tuple[
    int,
    List[Tuple[str, str]],
    "LimitsLike",
    Optional["CacheConfig"],
    Optional[str],
    Optional["FaultPlan"],
    int,
]

#: How many times the runner attempts a workload before abandoning it into
#: ``failures`` (the first run plus ``DEFAULT_MAX_ATTEMPTS - 1`` retries).
DEFAULT_MAX_ATTEMPTS = 3

#: Marker rewritten by :func:`with_depth` (a plain integer literal in the source).
_DEPTH_PATTERN = re.compile(r"\{DEPTH\}")

ADD_AND_REVERSE = """
program add_and_reverse

procedure main()
  root, lside, rside: handle
begin
  root := build({DEPTH});
  lside := root.left;
  rside := root.right;
  { PROGRAM POINT A }
  add_n(lside, 1);
  add_n(rside, -1);
  reverse(root)
end

procedure add_n(h: handle; n: int)
  l, r: handle
begin
  if h <> nil then
  begin
    h.value := h.value + n;
    l := h.left;
    r := h.right;
    { PROGRAM POINT B }
    add_n(l, n);
    add_n(r, n)
  end
end

procedure reverse(h: handle)
  l, r: handle
begin
  if h <> nil then
  begin
    l := h.left;
    r := h.right;
    { PROGRAM POINT C }
    reverse(l);
    reverse(r);
    h.left := r;
    h.right := l
  end
end

function build(d: int): handle
  t, cl, cr: handle
begin
  t := nil;
  if d > 0 then
  begin
    t := new();
    t.value := d;
    cl := build(d - 1);
    cr := build(d - 1);
    t.left := cl;
    t.right := cr
  end
end
return (t)
"""

TREE_ADD = """
program tree_add

procedure main()
  root: handle; total: int
begin
  root := build({DEPTH});
  total := sum(root)
end

function sum(h: handle): int
  s, ls, rs: int; l, r: handle
begin
  s := 0;
  if h <> nil then
  begin
    l := h.left;
    r := h.right;
    ls := sum(l);
    rs := sum(r);
    s := h.value + ls + rs
  end
end
return (s)

function build(d: int): handle
  t, cl, cr: handle
begin
  t := nil;
  if d > 0 then
  begin
    t := new();
    t.value := 1;
    cl := build(d - 1);
    cr := build(d - 1);
    t.left := cl;
    t.right := cr
  end
end
return (t)
"""

TREE_MIRROR = """
program tree_mirror

procedure main()
  root: handle
begin
  root := build({DEPTH});
  mirror(root)
end

procedure mirror(h: handle)
  l, r: handle
begin
  if h <> nil then
  begin
    l := h.left;
    r := h.right;
    mirror(l);
    mirror(r);
    h.left := r;
    h.right := l
  end
end

function build(d: int): handle
  t, cl, cr: handle
begin
  t := nil;
  if d > 0 then
  begin
    t := new();
    t.value := d;
    cl := build(d - 1);
    cr := build(d - 1);
    t.left := cl;
    t.right := cr
  end
end
return (t)
"""

TREE_COPY = """
program tree_copy

procedure main()
  root, duplicate: handle
begin
  root := build({DEPTH});
  duplicate := copy(root)
end

function copy(h: handle): handle
  t, l, r, cl, cr: handle; v: int
begin
  t := nil;
  if h <> nil then
  begin
    t := new();
    v := h.value;
    t.value := v;
    l := h.left;
    r := h.right;
    cl := copy(l);
    cr := copy(r);
    t.left := cl;
    t.right := cr
  end
end
return (t)

function build(d: int): handle
  t, cl, cr: handle
begin
  t := nil;
  if d > 0 then
  begin
    t := new();
    t.value := d;
    cl := build(d - 1);
    cr := build(d - 1);
    t.left := cl;
    t.right := cr
  end
end
return (t)
"""

BST_BUILD = """
program bst_build

procedure main()
  root: handle; i, n, key, total: int
begin
  n := {DEPTH};
  root := new();
  root.value := n * 7919 mod (2 * n + 1);
  i := 1;
  while i < n do
  begin
    key := i * 7919 mod (2 * n + 1);
    insert(root, key);
    i := i + 1
  end;
  total := sum(root)
end

procedure insert(h: handle; key: int)
  child: handle; v: int
begin
  v := h.value;
  if key < v then
  begin
    child := h.left;
    if child = nil then
    begin
      child := new();
      child.value := key;
      h.left := child
    end
    else
      insert(child, key)
  end
  else
  begin
    child := h.right;
    if child = nil then
    begin
      child := new();
      child.value := key;
      h.right := child
    end
    else
      insert(child, key)
  end
end

function sum(h: handle): int
  s, ls, rs: int; l, r: handle
begin
  s := 0;
  if h <> nil then
  begin
    l := h.left;
    r := h.right;
    ls := sum(l);
    rs := sum(r);
    s := h.value + ls + rs
  end
end
return (s)
"""

LIST_WALK = """
program list_walk

procedure main()
  head, l: handle; n, count: int
begin
  n := {DEPTH};
  head := makelist(n);
  l := head;
  count := 0;
  while l.left <> nil do
  begin
    l := l.left;
    count := count + 1
  end
end

function makelist(n: int): handle
  t, rest: handle
begin
  t := nil;
  if n > 0 then
  begin
    t := new();
    t.value := n;
    rest := makelist(n - 1);
    t.left := rest
  end
end
return (t)
"""

BITONIC_SORT = """
program bitonic_sort

procedure main()
  root: handle
begin
  root := build({DEPTH}, 1);
  bisort(root, 1)
end

{ Bitonic sort over the leaves of a perfect binary tree: sort one half   }
{ ascending and the other descending (a bitonic sequence), then merge.   }
procedure bisort(t: handle; up: int)
  l, r: handle
begin
  l := t.left;
  if l <> nil then
  begin
    r := t.right;
    bisort(l, 1);
    bisort(r, 0);
    bimerge(t, up)
  end
end

{ Bitonic merge: compare-exchange corresponding leaves of the two halves, }
{ then merge each half recursively.                                        }
procedure bimerge(t: handle; up: int)
  l, r: handle
begin
  l := t.left;
  if l <> nil then
  begin
    r := t.right;
    cmpswap(l, r, up);
    bimerge(l, up);
    bimerge(r, up)
  end
end

{ Pairwise compare-exchange between corresponding leaves of two disjoint  }
{ subtrees of equal shape.                                                 }
procedure cmpswap(a, b: handle; up: int)
  al, ar, bl, br: handle; av, bv: int
begin
  al := a.left;
  if al = nil then
  begin
    av := a.value;
    bv := b.value;
    if up = 1 then
    begin
      if av > bv then
      begin
        a.value := bv;
        b.value := av
      end
    end
    else
    begin
      if av < bv then
      begin
        a.value := bv;
        b.value := av
      end
    end
  end
  else
  begin
    ar := a.right;
    bl := b.left;
    br := b.right;
    cmpswap(al, bl, up);
    cmpswap(ar, br, up)
  end
end

{ A perfect binary tree of the given depth whose leaves carry pseudo-     }
{ random values; internal nodes carry 0.                                   }
function build(d: int; seed: int): handle
  t, cl, cr: handle
begin
  t := new();
  if d <= 1 then
    t.value := seed * 7919 mod 104729
  else
  begin
    t.value := 0;
    cl := build(d - 1, seed * 2);
    cr := build(d - 1, seed * 2 + 1);
    t.left := cl;
    t.right := cr
  end
end
return (t)
"""

DAG_SHARING = """
program dag_sharing

procedure main()
  x, y, shared: handle
begin
  x := new();
  y := new();
  shared := new();
  shared.value := 42;
  x.left := shared;
  y.right := shared
end
"""

CYCLE_BUG = """
program cycle_bug

procedure main()
  root, child, grandchild: handle
begin
  root := new();
  child := new();
  grandchild := new();
  root.left := child;
  child.left := grandchild;
  grandchild.left := root
end
"""

SWAP_CHILDREN = """
program swap_children

procedure main()
  root, l, r: handle
begin
  root := build(3);
  l := root.left;
  r := root.right;
  root.left := r;
  root.right := l
end

function build(d: int): handle
  t, cl, cr: handle
begin
  t := nil;
  if d > 0 then
  begin
    t := new();
    t.value := d;
    cl := build(d - 1);
    cr := build(d - 1);
    t.left := cl;
    t.right := cr
  end
end
return (t)
"""

#: All named workloads.
WORKLOADS: Dict[str, str] = {
    "add_and_reverse": ADD_AND_REVERSE,
    "tree_add": TREE_ADD,
    "tree_mirror": TREE_MIRROR,
    "tree_copy": TREE_COPY,
    "bst_build": BST_BUILD,
    "list_walk": LIST_WALK,
    "bitonic_sort": BITONIC_SORT,
    "dag_sharing": DAG_SHARING,
    "cycle_bug": CYCLE_BUG,
    "swap_children": SWAP_CHILDREN,
}

#: Workloads whose ``main`` routine leaves the structure a TREE.
TREE_PRESERVING = (
    "add_and_reverse",
    "tree_add",
    "tree_mirror",
    "tree_copy",
    "bst_build",
    "list_walk",
    "bitonic_sort",
    "swap_children",
)


def with_depth(source: str, depth: int) -> str:
    """Substitute the ``{DEPTH}`` placeholder (tree depth / list length / key count)."""
    return _DEPTH_PATTERN.sub(str(depth), source)


def load(name: str, depth: int = 4) -> Tuple[ast.Program, TypeInfo]:
    """Parse, type check and normalize a named workload at the given depth."""
    try:
        source = WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(WORKLOADS)}") from None
    return parse_and_normalize(with_depth(source, depth))


def source(name: str, depth: int = 4) -> str:
    """The SIL source text of a named workload at the given depth."""
    return with_depth(WORKLOADS[name], depth)


class SuiteResult(Dict[str, "AnalysisResult"]):
    """``{name: AnalysisResult}`` for the workloads that analyzed successfully.

    Behaves exactly like the plain dict :func:`analyze_suite` used to
    return, with two extras:

    * ``failures`` — ``{name: exception}`` for every workload that failed to
      load or analyze.  One bad program no longer aborts the whole batch.
    * ``stats`` — the :class:`~repro.analysis.context.AnalysisStats` shared
      by every successful analysis in the batch.
    """

    def __init__(self, stats: "AnalysisStats"):
        super().__init__()
        self.failures: Dict[str, Exception] = {}
        self.stats = stats


def analyze_suite(
    names: Optional[Sequence[str]] = None,
    depth: int = 4,
    limits=None,
) -> SuiteResult:
    """Analyze a batch of named workloads against one shared analysis context.

    Each workload is loaded and analyzed against one shared memoized-transfer
    cache, one :class:`~repro.analysis.context.AnalysisStats` and the global
    interned path domain (the same :class:`~repro.analysis.engine.
    BatchAnalyzer` sharing :func:`repro.analysis.analyze_many` uses).  A
    workload that fails to load or analyze is recorded in
    ``result.failures`` — with its name and the exception — instead of
    aborting the rest of the batch.
    """
    from ..analysis.engine import BatchAnalyzer
    from ..analysis.limits import DEFAULT_LIMITS

    if names is None:
        names = list(WORKLOADS)
    batch = BatchAnalyzer(limits=limits if limits is not None else DEFAULT_LIMITS)
    results = SuiteResult(stats=batch.stats)
    for name in names:
        try:
            program, info = load(name, depth=depth)
            results[name] = batch.analyze(program, info)
        except Exception as error:  # noqa: BLE001 - surfaced per workload
            results.failures[name] = error
    return results


# ---------------------------------------------------------------------------
# Sharded batch analysis
# ---------------------------------------------------------------------------


def analyze_pairs(
    batch, pairs: List[Tuple[str, str]], shard: int = 0, attempt: int = 0
) -> Dict:
    """Analyze ``(name, source)`` pairs through a caller-provided batch.

    The single implementation of the per-shard analysis loop, shared by the
    forked shard workers (:func:`_analyze_shard`, which builds a fresh
    :class:`~repro.analysis.engine.BatchAnalyzer` per shard) and the
    long-lived analysis server (:mod:`repro.server`, which hands in a batch
    attached to its *warm* server-lifetime transfer cache).  Parses each
    source through the real front end and ships back canonical
    (process-independent, picklable) encodings — never live
    ``AnalysisResult`` objects, whose ``id()``-keyed recorders and interned
    domain values do not survive pickling meaningfully.

    All reported numbers are **deltas over this call**, not absolute
    process state, which is what makes the output additive across shards
    and across a server's requests:

    * ``stats`` — the growth of ``batch.stats`` counters during this call
      (identical to the absolute counters for a fresh batch).  The batch is
      flushed *before* the snapshot, so persistent write/eviction totals
      are included.
    * ``widening`` — a per-workload telemetry row: the widening-counter
      deltas attributable to that workload (escalation re-runs included),
      the number of adaptive escalations it took, and the final
      :class:`AnalysisLimits` rung its result was produced under.  Because
      transfer-cache hits *replay* the widening counts captured at compute
      time, these deltas are exact — sharding or serving never loses or
      double-counts a widening event.
    * ``intern_tables`` — growth of this process's global interning tables
      while the call ran (fork workers inherit the parent's tables
      pre-populated, so absolute sizes would double-count the parent's
      interning).

    The caller keeps ownership of ``batch``: this flushes computed
    transfer deltas (one write batch per call) but never closes the
    persistent backend.

    Under an installed :class:`~repro.faults.FaultPlan`, each workload is
    a ``shard.workload`` injection site keyed ``"{name}@{attempt}"``: a
    ``slow`` rule sleeps before analyzing, a ``crash`` rule *poisons* the
    shard — the loop stops, computed deltas are still flushed, and the
    output carries ``crashed`` plus the ``pending`` (not yet analyzed)
    workload names for the parent runner to requeue.  Because the decision
    key carries the attempt, requeued work gets a fresh deterministic draw
    instead of crashing forever.
    """
    from ..analysis.pathset import intern_table_sizes

    clock = stopwatch("suite.shard", {"shard": shard, "workloads": len(pairs)})
    metrics = MetricsRegistry()
    with clock:
        tables_before = intern_table_sizes()
        counters_before = batch.stats.counters()
        injected_before = injected_counts()
        cache_tier = getattr(batch, "cache", None)
        quarantined_before = getattr(cache_tier, "quarantined", 0)
        backend_errors_before = getattr(cache_tier, "backend_errors", 0)
        results: Dict[str, Dict] = {}
        failures: Dict[str, str] = {}
        widening: Dict[str, Dict] = {}
        crashed: Optional[Dict[str, object]] = None
        pending: List[str] = []
        for position, (name, source_text) in enumerate(pairs):
            rule = fault_fire("shard.workload", f"{name}@{attempt}")
            if rule is not None:
                if rule.kind == "crash":
                    # Poison the shard: abandon this and every following
                    # workload.  Already-computed results and flushed cache
                    # deltas survive (the store is content-addressed), so
                    # the parent only requeues the pending tail.
                    crashed = {"workload": name, "kind": rule.kind, "attempt": attempt}
                    pending = [pair_name for pair_name, _ in pairs[position:]]
                    break
                if rule.kind == "slow":
                    time.sleep(rule.delay)
            before = batch.stats.widening_counters()
            escalations_before = batch.stats.adaptive_escalations
            pops_before = batch.stats.worklist_pops
            workload_clock = stopwatch("suite.workload", {"workload": name})
            try:
                with workload_clock:
                    with span("sil.parse", {"workload": name}):
                        program, info = parse_and_normalize(source_text)
                    result = batch.analyze(program, info)
                results[name] = result.canonical()
                row: Dict[str, object] = {
                    counter: batch.stats.widening_counters()[counter] - before[counter]
                    for counter in before
                }
                row["adaptive_escalations"] = (
                    batch.stats.adaptive_escalations - escalations_before
                )
                row["final_limits"] = result.limits.as_dict()
                widening[name] = row
                metrics.counter("suite.workloads_analyzed").inc()
                metrics.histogram("suite.workload_seconds", workload=name).observe(
                    workload_clock.seconds
                )
                # A deterministic companion to the wall-time histogram: the
                # solver pops attributable to this workload are a pure
                # function of the program + limits, so this histogram is
                # bit-identical between sharded and single-process runs —
                # the merge-determinism tests pin it.
                metrics.histogram(
                    "suite.workload_worklist_pops",
                    DEFAULT_COUNT_BUCKETS,
                    workload=name,
                ).observe(batch.stats.worklist_pops - pops_before)
            except Exception as error:  # noqa: BLE001 - surfaced per workload
                failures[name] = f"{type(error).__name__}: {error}"
                metrics.counter("suite.workloads_failed").inc()
        # Flush computed transfer deltas to the shared store (one write batch
        # per call) *before* snapshotting the counters, so the write/eviction
        # totals merge with the rest of the stats.
        batch.flush()
        counters_after = batch.stats.counters()
        # Recovery observability, reported as deltas over this call like
        # everything else so the numbers merge exactly across shards and
        # server requests.  Server-side sites (``server.*``) are excluded:
        # the daemon records those straight into its own registry.
        for (site, kind), count in injected_counts().items():
            if site.startswith("server."):
                continue
            delta = count - injected_before.get((site, kind), 0)
            if delta:
                metrics.counter("faults.injected_total", site=site, kind=kind).inc(
                    delta
                )
        if cache_tier is not None:
            quarantined = getattr(cache_tier, "quarantined", 0) - quarantined_before
            if quarantined:
                metrics.counter("cache.quarantined_total").inc(quarantined)
            backend_errors = (
                getattr(cache_tier, "backend_errors", 0) - backend_errors_before
            )
            if backend_errors:
                metrics.counter("cache.backend_errors_total").inc(backend_errors)
            if getattr(cache_tier, "degraded", False):
                metrics.gauge("cache.degraded").set(1)
    output = {
        "shard": shard,
        "attempt": attempt,
        "workloads": [name for name, _ in pairs],
        "results": results,
        "failures": failures,
        "widening": widening,
        "stats": {
            name: counters_after[name] - counters_before.get(name, 0)
            for name in counters_after
        },
        "intern_tables": {
            table: max(0, size - tables_before.get(table, 0))
            for table, size in intern_table_sizes().items()
        },
        "metrics": metrics.as_dict(),
        "seconds": clock.seconds,
    }
    if crashed is not None:
        output["crashed"] = crashed
        output["pending"] = pending
    return output


def _analyze_shard(payload: ShardPayload) -> Dict:
    """Analyze one shard of ``(name, source)`` pairs; returns plain data.

    Runs in a worker process: builds a shard-private
    :class:`~repro.analysis.engine.BatchAnalyzer` and drives the shared
    :func:`analyze_pairs` loop over the shard's items.  With a
    :class:`~repro.cache.backend.CacheConfig` in the payload the shard
    opens the shared persistent store itself (backends never cross process
    boundaries) and reads through to it — a warm store means the shard
    decodes transfers other runs or other shards already computed — then
    flushes its computed deltas in one batch when the shard completes.

    The payload's fault plan (when present) is installed for **spawned**
    workers, which inherit no parent globals; forked workers (and the
    inline path) already see the plan :meth:`ShardedSuiteRunner.run`
    installed via :func:`~repro.faults.fault_scope`.  A ``shard.worker``
    crash rule fires *before* any analysis — the worker dies with
    :class:`~repro.faults.InjectedWorkerCrash` and the parent requeues the
    whole shard (the dead-worker path, vs. the mid-shard poisoning
    ``shard.workload`` exercises).
    """
    from ..analysis.engine import BatchAnalyzer

    shard_index, pairs, limits, cache, policy, faults, attempt = payload
    if faults is not None and current_fault_plan() is None:
        install_fault_plan(faults)
    rule = fault_fire("shard.worker", f"{shard_index}@{attempt}")
    if rule is not None and rule.kind == "crash":
        raise InjectedWorkerCrash(
            f"injected worker crash (shard {shard_index}, attempt {attempt})"
        )
    batch = BatchAnalyzer(limits=limits, cache=cache, policy=policy)
    try:
        return analyze_pairs(batch, pairs, shard=shard_index, attempt=attempt)
    finally:
        batch.close()


def _analyze_shard_traced(payload: ShardPayload) -> Dict:
    """The pool target: ``_analyze_shard`` plus trace shipping.

    A forked worker inherits the parent's installed tracer *and its
    already-recorded events*; replaying those home would duplicate the
    parent's timeline, so the worker clears its inherited copy first, then
    drains whatever the shard recorded into the (picklable) output dict for
    the parent to :meth:`~repro.obs.trace.Tracer.absorb`.  Only the pool
    path uses this wrapper — the inline path records straight into the
    parent's tracer and must *not* reset it.
    """
    tracer = current_tracer()
    if tracer is not None:
        tracer.reset()
    output = _analyze_shard(payload)
    if tracer is not None:
        output["trace_events"] = tracer.drain()
    return output


@dataclass
class ShardReport:
    """What one shard did: its workloads, work counters and wall-clock time."""

    shard: int
    workloads: List[str]
    stats: "AnalysisStats"
    seconds: float
    #: Growth of the worker's process-global interning tables during the
    #: shard (see ``_analyze_shard``); empty for legacy outputs.
    intern_tables: Dict[str, int] = field(default_factory=dict)
    #: Which attempt this shard ran as (0 for the original dispatch; > 0
    #: for payloads requeued after a worker crash).
    attempt: int = 0

    def as_dict(self) -> Dict:
        return {
            "shard": self.shard,
            "attempt": self.attempt,
            "workloads": self.workloads,
            "seconds": round(self.seconds, 4),
            "stats": self.stats.counters(),
            "intern_tables": dict(self.intern_tables),
        }


@dataclass
class ShardedSuiteReport:
    """The merged outcome of a sharded suite run.

    ``results`` maps every workload name to its *canonical* encoding (see
    :meth:`repro.analysis.engine.AnalysisResult.canonical`) in input order;
    ``stats`` is the merge of every shard's counters, with the per-shard
    breakdown retained in ``shards``; ``widening`` maps every analyzed
    workload to its widening-telemetry row (counter deltas, adaptive
    escalations, final limits rung).
    """

    results: Dict[str, Dict]
    failures: Dict[str, str]
    stats: "AnalysisStats"
    shards: List[ShardReport] = field(default_factory=list)
    widening: Dict[str, Dict] = field(default_factory=dict)
    #: Interning-table growth summed across every worker process.  The
    #: per-worker sizing is what makes this meaningful under sharding:
    #: reading the parent's process-global tables would silently reflect
    #: only the parent's own interning.
    intern_tables: Dict[str, int] = field(default_factory=dict)
    #: The exact merge of every shard's :class:`~repro.obs.metrics.
    #: MetricsRegistry` — counters, and the per-workload latency / worklist
    #: histograms the ``tails`` section is derived from.  Merging follows
    #: the ``stats`` discipline: integer sums only, so sharded == inline.
    metrics: "MetricsRegistry" = field(default_factory=MetricsRegistry)
    #: Per-workload attempt counts, for workloads that needed more than
    #: one: ``{name: attempts}`` where attempts includes the first try.
    #: Empty in a fault-free run.
    attempts: Dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def tails(self) -> Dict[str, Dict]:
        """Per-workload p50/p90/p99 (+ ``_overall``) from the merged histograms.

        Quantiles come from the fixed bucket boundaries, so this report is
        identical whether the histograms were merged from 1, 2 or N shards
        observing the same workloads.
        """
        return latency_tails(self.metrics, "suite.workload_seconds", "workload")

    def matches(self, other: "ShardedSuiteReport") -> bool:
        """Bit-identical outcomes: same encodings and same failure *payloads*.

        Failures are compared as full ``{name: message}`` mappings, not just
        name sets — two runs that failed the same workloads for *different
        reasons* are not identical, and the sharded==single-process check
        must catch exactly that kind of divergence.
        """
        return self.results == other.results and self.failures == other.failures

    def results_digest(self) -> str:
        """SHA-256 over the canonical results + failure payloads.

        Equal digests ⇔ :meth:`matches` would be true — a compact identity
        that artifacts can carry, so *separate processes* (e.g. the CI's
        cold and warm bench runs against one cache directory) can assert
        bit-identical outcomes without shipping the full encodings.
        """
        import hashlib
        import json as json_module

        document = json_module.dumps(
            {"results": self.results, "failures": self.failures},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(document.encode("utf-8")).hexdigest()

    def as_dict(self) -> Dict:
        # Counters only: as_dict() would append *this* process's intern-table
        # sizes, which reflect none of the shard workers' interning.  The
        # hit rate here is advisory display output — consumers rebuilding
        # stats must recompute it from the raw hit/miss counters.
        merged_stats = dict(self.stats.counters())
        merged_stats["transfer_cache_hit_rate"] = round(self.stats.transfer_cache_hit_rate, 4)
        merged_stats["persistent_cache_hit_rate"] = round(
            self.stats.persistent_cache_hit_rate, 4
        )
        return {
            "workloads_analyzed": len(self.results),
            "results_digest": self.results_digest(),
            "seconds": round(self.seconds, 4),
            "stats": merged_stats,
            "shards": [shard.as_dict() for shard in self.shards],
            "widening": {name: dict(row) for name, row in self.widening.items()},
            "intern_tables": dict(self.intern_tables),
            "tails": self.tails(),
            "metrics": self.metrics.as_dict(),
            "attempts": dict(self.attempts),
            "failures": dict(self.failures),
        }


class ShardedSuiteRunner:
    """Shards a workload suite across worker processes and merges the results.

    Items are ``(name, source)`` pairs — source *text*, the canonical
    picklable form — assigned round-robin to ``shards`` workers.  Each
    worker analyzes its shard against a shard-private memoized-transfer
    cache and :class:`~repro.analysis.context.AnalysisStats`, then ships
    canonical encodings back; the parent merges stats (exactly additive)
    and keeps the per-shard breakdown.  ``shards <= 1`` runs inline in this
    process — the reference the regression tests compare against, since
    shard assignment never changes any per-program result.

    ``limits`` may be a fixed :class:`AnalysisLimits` or an
    :class:`~repro.analysis.limits.AdaptiveLimits` escalation policy; both
    are plain frozen dataclasses and travel to the workers in the shard
    payload — as does ``cache``, an optional :class:`~repro.cache.backend.
    CacheConfig` naming a persistent transfer store every shard opens
    read-through and flushes its computed deltas into on completion (the
    cross-run warm-start path).
    """

    def __init__(
        self,
        items: Sequence[Tuple[str, str]],
        shards: int = 2,
        limits: Optional["LimitsLike"] = None,
        cache: Optional["CacheConfig"] = None,
        policy: Optional[str] = None,
        faults: Optional["FaultPlan"] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ):
        from collections import Counter

        from ..analysis.limits import DEFAULT_LIMITS

        counts = Counter(name for name, _ in items)
        duplicates = sorted(name for name, count in counts.items() if count > 1)
        if duplicates:
            raise ValueError(f"duplicate workload names across shards: {duplicates}")
        self.items = list(items)
        self.shards = max(1, int(shards))
        self.limits = limits if limits is not None else DEFAULT_LIMITS
        self.cache = cache.validated() if cache is not None else None
        #: In-memory eviction policy; meaningful with or without a store.
        self.policy = policy
        #: Optional :class:`~repro.faults.FaultPlan`, installed for the
        #: duration of each run (and shipped to workers in the payloads).
        self.faults = faults.validated() if faults is not None else None
        self.max_attempts = max(1, int(max_attempts))

    @classmethod
    def from_names(
        cls,
        names: Optional[Sequence[str]] = None,
        depth: int = 4,
        shards: int = 2,
        limits: Optional["LimitsLike"] = None,
        cache: Optional["CacheConfig"] = None,
        policy: Optional[str] = None,
        faults: Optional["FaultPlan"] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> "ShardedSuiteRunner":
        """A runner over named workloads from :data:`WORKLOADS`."""
        if names is None:
            names = list(WORKLOADS)
        return cls(
            [(name, source(name, depth=depth)) for name in names],
            shards,
            limits,
            cache,
            policy,
            faults=faults,
            max_attempts=max_attempts,
        )

    @classmethod
    def from_scenarios(
        cls,
        scenarios: Sequence["Scenario"],
        shards: int = 2,
        limits: Optional["LimitsLike"] = None,
        cache: Optional["CacheConfig"] = None,
        policy: Optional[str] = None,
        faults: Optional["FaultPlan"] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> "ShardedSuiteRunner":
        """A runner over generated scenarios (see :mod:`.generators`)."""
        return cls(
            [(s.name, s.source) for s in scenarios],
            shards,
            limits,
            cache,
            policy,
            faults=faults,
            max_attempts=max_attempts,
        )

    # ------------------------------------------------------------------

    def _payload(
        self, index: int, pairs: List[Tuple[str, str]], attempt: int = 0
    ) -> ShardPayload:
        return (index, pairs, self.limits, self.cache, self.policy, self.faults, attempt)

    def _payloads(self, shards: int) -> List[ShardPayload]:
        buckets: List[List[Tuple[str, str]]] = [[] for _ in range(shards)]
        for index, item in enumerate(self.items):
            buckets[index % shards].append(item)
        return [
            self._payload(index, bucket)
            for index, bucket in enumerate(buckets)
            if bucket
        ]

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------

    def _recover_poisoned(
        self,
        output: Dict,
        control: "MetricsRegistry",
        attempts: Dict[str, int],
        allocate_index: Callable[[], int],
    ) -> Optional[ShardPayload]:
        """Requeue a poisoned shard output's pending workloads.

        Returns the follow-up payload, or ``None`` when there is nothing
        to requeue — either the output is healthy, or retries are
        exhausted, in which case the pending workloads are recorded as
        failures *in the output* (so ``_merge`` picks them up like any
        other failure).
        """
        crash = output.get("crashed")
        pending = output.get("pending") or []
        if not crash or not pending:
            return None
        next_attempt = int(output.get("attempt", 0)) + 1
        control.counter(
            "suite.shard_crashes_total", kind=str(crash.get("kind", "crash"))
        ).inc()
        for name in pending:
            attempts[name] = next_attempt + 1
        if next_attempt >= self.max_attempts:
            for name in pending:
                attempts[name] = next_attempt
                output["failures"][name] = (
                    f"shard worker crashed ({crash.get('kind', 'crash')}); "
                    f"retries exhausted after {self.max_attempts} attempts"
                )
            control.counter("suite.workloads_abandoned_total").inc(len(pending))
            return None
        control.counter("suite.workload_retries").inc(len(pending))
        sources = dict(self.items)
        return self._payload(
            allocate_index(),
            [(name, sources[name]) for name in pending],
            attempt=next_attempt,
        )

    def _recover_failed(
        self,
        payload: ShardPayload,
        error: BaseException,
        control: "MetricsRegistry",
        attempts: Dict[str, int],
        allocate_index: Callable[[], int],
    ) -> Tuple[Optional[ShardPayload], Optional[Dict]]:
        """Recover from a worker that died without producing output.

        Returns ``(follow_up_payload, synthetic_output)``: exactly one is
        non-``None``.  Within the attempt budget the whole shard is
        requeued; past it, a synthetic output records every workload as
        failed so the run still completes and reports honestly.
        """
        index, pairs = payload[0], payload[1]
        attempt = payload[6]
        names = [name for name, _ in pairs]
        control.counter("suite.shard_crashes_total", kind="worker").inc()
        next_attempt = attempt + 1
        for name in names:
            attempts[name] = next_attempt + 1
        if next_attempt >= self.max_attempts:
            for name in names:
                attempts[name] = next_attempt
            control.counter("suite.workloads_abandoned_total").inc(len(names))
            synthetic = {
                "shard": index,
                "attempt": attempt,
                "workloads": names,
                "results": {},
                "failures": {
                    name: (
                        f"shard worker died ({type(error).__name__}: {error}); "
                        f"retries exhausted after {self.max_attempts} attempts"
                    )
                    for name in names
                },
                "widening": {},
                "stats": {},
                "intern_tables": {},
                "metrics": {},
                "seconds": 0.0,
            }
            return None, synthetic
        control.counter("suite.workload_retries").inc(len(names))
        sources = dict(self.items)
        follow = self._payload(
            allocate_index(),
            [(name, sources[name]) for name in names],
            attempt=next_attempt,
        )
        return follow, None

    def run(self, progress=None) -> ShardedSuiteReport:
        """Run the suite across ``self.shards`` worker processes.

        Collection is **streaming**: shard outputs are consumed in
        completion order, so per-workload results and failures surface
        (via the optional ``progress`` callback, which receives each raw
        shard output dict) as soon as each shard finishes, not behind a
        final all-shards barrier.  The merged report is identical either
        way — ``_merge`` orders by shard index.

        Fault tolerance: a shard that comes back *poisoned* (a crash rule
        fired mid-shard) or whose worker died with an exception has its
        pending workloads requeued as a fresh payload — onto a free pool
        worker, or back onto the inline queue — with the attempt counter
        bumped, up to ``max_attempts`` total tries per workload.  Requeued
        workloads recompute from the same sources, so the merged report
        stays bit-identical to a fault-free run; only retries are bounded,
        and exhausted workloads are reported as failures, never dropped
        silently.
        """
        clock = stopwatch(
            "suite.run", {"shards": self.shards, "workloads": len(self.items)}
        )
        control = MetricsRegistry()
        attempts: Dict[str, int] = {}
        with fault_scope(self.faults):
            with clock:
                payloads = self._payloads(self.shards)
                next_index = len(payloads)

                def allocate_index() -> int:
                    nonlocal next_index
                    next_index += 1
                    return next_index - 1

                if self.shards <= 1 or len(payloads) <= 1:
                    outputs = self._run_inline(
                        payloads, progress, control, attempts, allocate_index
                    )
                else:
                    outputs = self._run_pool(
                        payloads, progress, control, attempts, allocate_index
                    )
        return self._merge(outputs, clock.seconds, control=control, attempts=attempts)

    def _run_inline(
        self,
        payloads: List[ShardPayload],
        progress,
        control: "MetricsRegistry",
        attempts: Dict[str, int],
        allocate_index: Callable[[], int],
    ) -> List[Dict]:
        """Drive payloads in this process, requeueing crashed work."""
        outputs: List[Dict] = []
        pending = list(payloads)
        while pending:
            payload = pending.pop(0)
            try:
                output = _analyze_shard(payload)
            except Exception as error:  # noqa: BLE001 - the recovery boundary
                follow, synthetic = self._recover_failed(
                    payload, error, control, attempts, allocate_index
                )
                if follow is not None:
                    pending.append(follow)
                    continue
                output = synthetic
            else:
                follow = self._recover_poisoned(
                    output, control, attempts, allocate_index
                )
                if follow is not None:
                    pending.append(follow)
            outputs.append(output)
            if progress is not None:
                progress(output)
        return outputs

    def _run_pool(
        self,
        payloads: List[ShardPayload],
        progress,
        control: "MetricsRegistry",
        attempts: Dict[str, int],
        allocate_index: Callable[[], int],
    ) -> List[Dict]:
        """Drive payloads across a worker pool, requeueing crashed work.

        ``apply_async`` (rather than ``imap_unordered``) so a requeued
        payload can be resubmitted to the *live* pool and land on any free
        surviving worker; completions and worker deaths funnel through one
        thread-safe queue the parent drains in completion order.
        """
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        completions: "queue_module.Queue" = queue_module.Queue()
        outputs: List[Dict] = []
        with span("suite.dispatch", {"shards": len(payloads)}):
            with context.Pool(processes=len(payloads)) as pool:
                outstanding = 0

                def submit(payload: ShardPayload) -> None:
                    nonlocal outstanding
                    outstanding += 1
                    pool.apply_async(
                        _analyze_shard_traced,
                        (payload,),
                        callback=completions.put,
                        error_callback=lambda error, payload=payload: completions.put(
                            (payload, error)
                        ),
                    )

                for payload in payloads:
                    submit(payload)
                while outstanding:
                    item = completions.get()
                    outstanding -= 1
                    if isinstance(item, tuple):  # (payload, error): worker died
                        payload, error = item
                        follow, synthetic = self._recover_failed(
                            payload, error, control, attempts, allocate_index
                        )
                        if follow is not None:
                            submit(follow)
                            continue
                        output = synthetic
                    else:
                        output = item
                        follow = self._recover_poisoned(
                            output, control, attempts, allocate_index
                        )
                        if follow is not None:
                            submit(follow)
                    outputs.append(output)
                    if progress is not None:
                        progress(output)
        return outputs

    def run_single_process(self, progress=None) -> ShardedSuiteReport:
        """The same suite, analyzed inline as one shard (the reference run).

        Shares the inline recovery loop with :meth:`run`, so even the
        reference run completes — and matches — under an installed fault
        plan; the bit-identity claim is symmetric.
        """
        clock = stopwatch("suite.run", {"shards": 1, "workloads": len(self.items)})
        control = MetricsRegistry()
        attempts: Dict[str, int] = {}
        with fault_scope(self.faults):
            with clock:
                payloads = [self._payload(0, list(self.items))]
                next_index = 1

                def allocate_index() -> int:
                    nonlocal next_index
                    next_index += 1
                    return next_index - 1

                outputs = self._run_inline(
                    payloads, progress, control, attempts, allocate_index
                )
        return self._merge(outputs, clock.seconds, control=control, attempts=attempts)

    def run_warm(self, batch, progress=None) -> ShardedSuiteReport:
        """The same suite, analyzed inline through a caller-provided batch.

        This is the analysis server's backend path (:mod:`repro.server`):
        the server owns one warm :class:`~repro.analysis.engine.
        BatchAnalyzer` attached to its lifetime transfer cache and runs
        every request's items through it in-process, so memoized transfers,
        the persistent tier and the interned path/matrix domain all stay
        hot across requests.  The report's stats are the *growth* during
        this run (see :func:`analyze_pairs`), so per-request reports sum
        exactly into server-lifetime totals.  The runner's own ``limits``/
        ``cache``/``policy`` are ignored — the batch already owns those
        choices; the batch is flushed but left open.
        """
        clock = stopwatch("suite.run_warm", {"workloads": len(self.items)})
        control = MetricsRegistry()
        attempts: Dict[str, int] = {}
        outputs: List[Dict] = []
        with clock:
            payload: Optional[ShardPayload] = self._payload(0, list(self.items))
            next_index = 1

            def allocate_index() -> int:
                nonlocal next_index
                next_index += 1
                return next_index - 1

            # The warm path shares the poisoned-shard recovery discipline:
            # under an ambient (daemon-installed) fault plan, a crashed
            # request loop re-runs its pending workloads through the same
            # warm batch, bounded by ``max_attempts``.
            while payload is not None:
                output = analyze_pairs(
                    batch, payload[1], shard=payload[0], attempt=payload[6]
                )
                payload = self._recover_poisoned(
                    output, control, attempts, allocate_index
                )
                outputs.append(output)
                if progress is not None:
                    progress(output)
        return self._merge(outputs, clock.seconds, control=control, attempts=attempts)

    # ------------------------------------------------------------------

    def _merge(
        self,
        outputs: List[Dict],
        seconds: float,
        control: Optional["MetricsRegistry"] = None,
        attempts: Optional[Dict[str, int]] = None,
    ) -> ShardedSuiteReport:
        from ..analysis.context import AnalysisStats

        # The parent's tracer (when installed) takes custody of the events
        # each pool worker drained into its output dict; inline runs never
        # ship events (they recorded straight into this process's tracer).
        tracer = current_tracer()
        shard_reports = []
        by_name: Dict[str, Dict] = {}
        failures: Dict[str, str] = {}
        widening_by_name: Dict[str, Dict] = {}
        merged_metrics = MetricsRegistry()
        for output in sorted(outputs, key=lambda o: o["shard"]):
            events = output.pop("trace_events", None)
            if tracer is not None and events:
                tracer.absorb(events)
            merged_metrics.absorb(MetricsRegistry.from_dict(output.get("metrics") or {}))
            shard_stats = AnalysisStats.from_dict(output["stats"])
            shard_reports.append(
                ShardReport(
                    shard=output["shard"],
                    workloads=output["workloads"],
                    stats=shard_stats,
                    seconds=output["seconds"],
                    intern_tables=dict(output.get("intern_tables", {})),
                    attempt=int(output.get("attempt", 0)),
                )
            )
            by_name.update(output["results"])
            failures.update(output["failures"])
            widening_by_name.update(output.get("widening", {}))
        if control is not None:
            merged_metrics.absorb(control)
        merged = AnalysisStats().merge(*(report.stats for report in shard_reports))
        summed_tables: Dict[str, int] = {}
        for report in shard_reports:
            for table, size in report.intern_tables.items():
                summed_tables[table] = summed_tables.get(table, 0) + size
        # Restore the input ordering the round-robin assignment scattered.
        results = {name: by_name[name] for name, _ in self.items if name in by_name}
        return ShardedSuiteReport(
            results=results,
            failures={name: failures[name] for name, _ in self.items if name in failures},
            stats=merged,
            shards=shard_reports,
            widening={
                name: widening_by_name[name]
                for name, _ in self.items
                if name in widening_by_name
            },
            intern_tables=summed_tables,
            metrics=merged_metrics,
            attempts=dict(attempts or {}),
            seconds=seconds,
        )
