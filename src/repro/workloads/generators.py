"""Workload generators: random trees and synthetic SIL programs.

Used by the property-based tests (soundness of the analysis against
concrete execution), the analysis-cost bench (EXT-D) and the examples.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..runtime.heap import Heap, TreeSpec
from ..sil import ast
from ..sil.builder import HANDLE, INT, ProgramBuilder, field, lit, name, new, not_nil
from ..sil.normalize import normalize_program
from ..sil.typecheck import TypeInfo, check_program


# ---------------------------------------------------------------------------
# Random trees
# ---------------------------------------------------------------------------


def random_tree_spec(
    rng: random.Random, max_depth: int, branch_probability: float = 0.8
) -> TreeSpec:
    """A random :data:`~repro.runtime.heap.TreeSpec` with depth at most ``max_depth``."""
    if max_depth <= 0:
        return None
    value = rng.randint(-100, 100)
    if max_depth == 1 or rng.random() > branch_probability:
        return value
    left = random_tree_spec(rng, max_depth - 1, branch_probability)
    right = random_tree_spec(rng, max_depth - 1, branch_probability)
    if left is None and right is None:
        return value
    return (value, left, right)


def perfect_tree_values(depth: int, seed: int = 1) -> List[int]:
    """The leaf values the ``bitonic_sort`` workload's ``build`` produces."""
    values: List[int] = []

    def go(d: int, s: int) -> None:
        if d <= 1:
            values.append(s * 7919 % 104729)
            return
        go(d - 1, s * 2)
        go(d - 1, s * 2 + 1)

    go(depth, seed)
    return values


# ---------------------------------------------------------------------------
# Synthetic SIL programs (for scaling studies)
# ---------------------------------------------------------------------------


def make_independent_loads_program(pairs: int) -> Tuple[ast.Program, TypeInfo]:
    """``main`` builds a tree and then performs ``pairs`` independent load pairs.

    Each pair reads the two children of a distinct node, so a precise
    analysis can fuse every pair into a parallel statement.  Used by the
    analysis-cost bench to scale program size while keeping the answer
    known.
    """
    builder = ProgramBuilder(f"independent_loads_{pairs}")
    locals_: List[Tuple[str, ast.SilType]] = [("root", HANDLE), ("cursor", HANDLE)]
    for index in range(pairs):
        locals_.append((f"a{index}", HANDLE))
        locals_.append((f"b{index}", HANDLE))
    main = builder.procedure("main", locals=locals_)
    main.assign("root", new())
    main.assign("cursor", name("root"))
    for index in range(pairs):
        # Grow the spine so every pair reads a different node.
        main.assign(("cursor", "left"), new())
        main.assign(("cursor", "right"), new())
        main.assign(f"a{index}", field("cursor", "left"))
        main.assign(f"b{index}", field("cursor", "right"))
        main.assign("cursor", field("cursor", "left"))
    return builder.build_core()


def make_handle_web_program(handles: int) -> Tuple[ast.Program, TypeInfo]:
    """``main`` keeps ``handles`` live handles into one chain — a dense path matrix.

    Used to measure how analysis cost grows with the number of live handles
    (the dimension of the path matrix).
    """
    builder = ProgramBuilder(f"handle_web_{handles}")
    locals_: List[Tuple[str, ast.SilType]] = [("root", HANDLE)]
    for index in range(handles):
        locals_.append((f"h{index}", HANDLE))
    main = builder.procedure("main", locals=locals_)
    main.assign("root", new())
    previous = "root"
    for index in range(handles):
        main.assign((previous, "left"), new())
        main.assign(f"h{index}", field(previous, "left"))
        previous = f"h{index}"
    # Touch every handle once more so none is dead.
    for index in range(handles):
        main.assign((f"h{index}", "value"), lit(index))
    return builder.build_core()


def make_recursive_walker_program(depth: int, update: bool) -> Tuple[ast.Program, TypeInfo]:
    """A generated recursive tree walker (read-only or updating), depth-parameterized."""
    builder = ProgramBuilder("generated_walker")
    main = builder.procedure("main", locals=[("root", HANDLE)])
    main.call_assign("root", "build", lit(depth))
    main.call("walk", name("root"))

    walk = builder.procedure("walk", params=[("h", HANDLE)], locals=[("l", HANDLE), ("r", HANDLE)])
    branch = walk.if_(not_nil("h"))
    if update:
        branch.then.assign(("h", "value"), ast.BinOp("+", field("h", "value"), lit(1)))
    branch.then.assign("l", field("h", "left"))
    branch.then.assign("r", field("h", "right"))
    branch.then.call("walk", name("l"))
    branch.then.call("walk", name("r"))

    build = builder.function(
        "build",
        params=[("d", INT)],
        locals=[("t", HANDLE), ("c", HANDLE)],
        return_type=HANDLE,
        return_var="t",
    )
    build.assign("t", ast.NilLit())
    grow = build.if_(ast.BinOp(">", name("d"), lit(0)))
    grow.then.assign("t", new())
    grow.then.assign(("t", "value"), name("d"))
    grow.then.call_assign("c", "build", ast.BinOp("-", name("d"), lit(1)))
    grow.then.assign(("t", "left"), name("c"))
    grow.then.call_assign("c", "build", ast.BinOp("-", name("d"), lit(1)))
    grow.then.assign(("t", "right"), name("c"))
    return builder.build_core()
