"""Workload generators: random trees and synthetic SIL programs.

Used by the property-based tests (soundness of the analysis against
concrete execution), the analysis-cost bench (EXT-D), the examples, and —
via the seeded *scenario* generator (:func:`generate_scenario` /
:func:`generate_scenarios`) — the batch-analysis frontend
(``python -m repro``), which feeds whole populations of random SIL
programs through the sharded suite runner.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..runtime.heap import Heap, TreeSpec
from ..sil import ast
from ..sil.builder import HANDLE, INT, ProgramBuilder, field, lit, name, new, not_nil
from ..sil.delta import statement_label
from ..sil.normalize import normalize_program, parse_and_normalize
from ..sil.parser import parse_program
from ..sil.printer import format_program
from ..sil.typecheck import TypeInfo, check_program


# ---------------------------------------------------------------------------
# Random trees
# ---------------------------------------------------------------------------


def random_tree_spec(
    rng: random.Random, max_depth: int, branch_probability: float = 0.8
) -> TreeSpec:
    """A random :data:`~repro.runtime.heap.TreeSpec` with depth at most ``max_depth``."""
    if max_depth <= 0:
        return None
    value = rng.randint(-100, 100)
    if max_depth == 1 or rng.random() > branch_probability:
        return value
    left = random_tree_spec(rng, max_depth - 1, branch_probability)
    right = random_tree_spec(rng, max_depth - 1, branch_probability)
    if left is None and right is None:
        return value
    return (value, left, right)


def perfect_tree_values(depth: int, seed: int = 1) -> List[int]:
    """The leaf values the ``bitonic_sort`` workload's ``build`` produces."""
    values: List[int] = []

    def go(d: int, s: int) -> None:
        if d <= 1:
            values.append(s * 7919 % 104729)
            return
        go(d - 1, s * 2)
        go(d - 1, s * 2 + 1)

    go(depth, seed)
    return values


# ---------------------------------------------------------------------------
# Synthetic SIL programs (for scaling studies)
# ---------------------------------------------------------------------------


def make_independent_loads_program(pairs: int) -> Tuple[ast.Program, TypeInfo]:
    """``main`` builds a tree and then performs ``pairs`` independent load pairs.

    Each pair reads the two children of a distinct node, so a precise
    analysis can fuse every pair into a parallel statement.  Used by the
    analysis-cost bench to scale program size while keeping the answer
    known.
    """
    builder = ProgramBuilder(f"independent_loads_{pairs}")
    locals_: List[Tuple[str, ast.SilType]] = [("root", HANDLE), ("cursor", HANDLE)]
    for index in range(pairs):
        locals_.append((f"a{index}", HANDLE))
        locals_.append((f"b{index}", HANDLE))
    main = builder.procedure("main", locals=locals_)
    main.assign("root", new())
    main.assign("cursor", name("root"))
    for index in range(pairs):
        # Grow the spine so every pair reads a different node.
        main.assign(("cursor", "left"), new())
        main.assign(("cursor", "right"), new())
        main.assign(f"a{index}", field("cursor", "left"))
        main.assign(f"b{index}", field("cursor", "right"))
        main.assign("cursor", field("cursor", "left"))
    return builder.build_core()


def make_handle_web_program(handles: int) -> Tuple[ast.Program, TypeInfo]:
    """``main`` keeps ``handles`` live handles into one chain — a dense path matrix.

    Used to measure how analysis cost grows with the number of live handles
    (the dimension of the path matrix).
    """
    builder = ProgramBuilder(f"handle_web_{handles}")
    locals_: List[Tuple[str, ast.SilType]] = [("root", HANDLE)]
    for index in range(handles):
        locals_.append((f"h{index}", HANDLE))
    main = builder.procedure("main", locals=locals_)
    main.assign("root", new())
    previous = "root"
    for index in range(handles):
        main.assign((previous, "left"), new())
        main.assign(f"h{index}", field(previous, "left"))
        previous = f"h{index}"
    # Touch every handle once more so none is dead.
    for index in range(handles):
        main.assign((f"h{index}", "value"), lit(index))
    return builder.build_core()


def make_recursive_walker_program(depth: int, update: bool) -> Tuple[ast.Program, TypeInfo]:
    """A generated recursive tree walker (read-only or updating), depth-parameterized."""
    builder = ProgramBuilder("generated_walker")
    main = builder.procedure("main", locals=[("root", HANDLE)])
    main.call_assign("root", "build", lit(depth))
    main.call("walk", name("root"))

    walk = builder.procedure("walk", params=[("h", HANDLE)], locals=[("l", HANDLE), ("r", HANDLE)])
    branch = walk.if_(not_nil("h"))
    if update:
        branch.then.assign(("h", "value"), ast.BinOp("+", field("h", "value"), lit(1)))
    branch.then.assign("l", field("h", "left"))
    branch.then.assign("r", field("h", "right"))
    branch.then.call("walk", name("l"))
    branch.then.call("walk", name("r"))

    _build_tree_function(builder)
    return builder.build_core()


# ---------------------------------------------------------------------------
# Seeded random SIL scenarios (the batch-analysis workload population)
# ---------------------------------------------------------------------------

#: The scenario families the random generator can produce.  ``dag`` (heavy
#: cross-linked sharing — the paper's hardest aliasing case) and ``deep``
#: (long recursion chains over deeper call graphs) deliberately push the
#: path domain into its widening bounds; analyze them with
#: :meth:`~repro.analysis.limits.AnalysisLimits.adaptive` limits to see the
#: escalation policy at work.
FAMILIES = ("list", "tree", "web", "mixed", "dag", "deep")

#: The families whose default-config scenarios stay inside the default
#: ``AnalysisLimits`` without ever losing path structure to the lossy
#: ``max_segments`` collapse (asserted by the generator property tests).
#: ``dag`` and ``deep`` are excluded on purpose: widening is their point.
UNTRUNCATED_FAMILIES = ("list", "tree", "web", "mixed")


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random-scenario generator.

    ``procedures`` counts the recursive *walker* routines generated on top
    of the structure builder; ``depth`` is the structure-size constant baked
    into ``main`` (tree depth / list length); ``aliasing`` is the
    probability, per choice point, that the generator introduces handle
    overlap — aliased call targets, handle copies, cross-links — which is
    what drives interference density.  Defaults stay comfortably inside
    :data:`~repro.analysis.limits.DEFAULT_LIMITS` (no widening/truncation).
    """

    family: str = "mixed"
    procedures: int = 2
    depth: int = 4
    aliasing: float = 0.3

    def clamped(self) -> "GeneratorConfig":
        """A copy with every knob forced into its supported range."""
        return replace(
            self,
            procedures=max(1, min(4, self.procedures)),
            depth=max(1, min(8, self.depth)),
            aliasing=max(0.0, min(1.0, self.aliasing)),
        )


@dataclass(frozen=True)
class Scenario:
    """One generated SIL program, carried as *source text*.

    Source text is the canonical (and picklable) form: the sharded runner
    ships scenarios to worker processes as strings, and every consumer
    re-enters the front end via :meth:`load` — so each scenario is
    validated by the real parser, type checker and normalizer, never by a
    side channel.
    """

    name: str
    family: str
    seed: int
    config: GeneratorConfig
    source: str

    def load(self) -> Tuple[ast.Program, TypeInfo]:
        """Parse, type check and normalize the scenario's source."""
        return parse_and_normalize(self.source)


def generate_scenario(seed: int, config: Optional[GeneratorConfig] = None) -> Scenario:
    """Generate one random SIL scenario, deterministically from ``seed``.

    The program is assembled with :class:`~repro.sil.builder.ProgramBuilder`,
    rendered to concrete syntax, and immediately re-validated through the
    parser/type checker/normalizer — a generator bug surfaces here, not in a
    downstream worker.
    """
    config = (config or GeneratorConfig()).clamped()
    rng = random.Random(seed)
    build_family = _FAMILY_BUILDERS.get(config.family)
    if build_family is None:
        raise KeyError(f"unknown scenario family {config.family!r}; known: {list(FAMILIES)}")
    program_name = f"{config.family}_s{seed}"
    source = format_program(build_family(program_name, rng, config))
    parse_and_normalize(source)  # validate through the real front end
    return Scenario(
        name=program_name, family=config.family, seed=seed, config=config, source=source
    )


def generate_scenarios(
    count: int,
    base_seed: int = 0,
    config: Optional[GeneratorConfig] = None,
    families: Optional[Sequence[str]] = None,
) -> List[Scenario]:
    """A population of ``count`` scenarios, round-robin over ``families``.

    Scenario ``i`` uses seed ``base_seed + i`` and family
    ``families[i % len(families)]`` (default: all of :data:`FAMILIES`), so
    populations are reproducible and evenly mixed.
    """
    config = config or GeneratorConfig()
    chosen = tuple(families) if families else FAMILIES
    for family in chosen:
        if family not in FAMILIES:
            raise KeyError(f"unknown scenario family {family!r}; known: {list(FAMILIES)}")
    return [
        generate_scenario(base_seed + index, replace(config, family=chosen[index % len(chosen)]))
        for index in range(count)
    ]


def cross_check_scenario(scenario: Scenario, limits=None) -> bool:
    """True iff the pipeline and reference engines agree on the scenario.

    Compares the canonical encodings of
    :func:`~repro.analysis.engine.analyze_program` and the retained seed
    engine :func:`~repro.analysis.engine.analyze_program_reference` — the
    generated-population analogue of the golden tests on the named
    workloads.  Intended for small sizes (the reference engine re-analyzes
    every procedure every round).

    An :class:`~repro.analysis.limits.AdaptiveLimits` policy is unwrapped
    to its base rung: the reference engine has no escalation ladder, so the
    comparison is engine-vs-engine at one fixed set of bounds.
    """
    from ..analysis import analyze_program, analyze_program_reference
    from ..analysis.limits import DEFAULT_LIMITS, base_limits

    limits = base_limits(limits) if limits is not None else DEFAULT_LIMITS
    program, info = scenario.load()
    pipeline = analyze_program(program, info, limits=limits)
    reference_program, reference_info = scenario.load()
    reference = analyze_program_reference(reference_program, reference_info, limits=limits)
    return pipeline.canonical() == reference.canonical()


# -- family builders (surface ASTs; callers print + reparse) ----------------


def _build_tree_function(builder: ProgramBuilder, value_expr=None) -> None:
    """The standard recursive ``build(d)`` tree constructor."""
    build = builder.function(
        "build",
        params=[("d", INT)],
        locals=[("t", HANDLE), ("c", HANDLE)],
        return_type=HANDLE,
        return_var="t",
    )
    build.assign("t", ast.NilLit())
    grow = build.if_(ast.BinOp(">", name("d"), lit(0)))
    grow.then.assign("t", new())
    grow.then.assign(("t", "value"), value_expr if value_expr is not None else name("d"))
    grow.then.call_assign("c", "build", ast.BinOp("-", name("d"), lit(1)))
    grow.then.assign(("t", "left"), name("c"))
    grow.then.call_assign("c", "build", ast.BinOp("-", name("d"), lit(1)))
    grow.then.assign(("t", "right"), name("c"))


def _build_list_function(builder: ProgramBuilder) -> None:
    """The standard recursive ``makelist(n)`` constructor (left-linked)."""
    makelist = builder.function(
        "makelist",
        params=[("n", INT)],
        locals=[("t", HANDLE), ("rest", HANDLE)],
        return_type=HANDLE,
        return_var="t",
    )
    makelist.assign("t", ast.NilLit())
    grow = makelist.if_(ast.BinOp(">", name("n"), lit(0)))
    grow.then.assign("t", new())
    grow.then.assign(("t", "value"), name("n"))
    grow.then.call_assign("rest", "makelist", ast.BinOp("-", name("n"), lit(1)))
    grow.then.assign(("t", "left"), name("rest"))


def _add_list_walker(builder: ProgramBuilder, proc_name: str, rng: random.Random) -> None:
    """A recursive list walker: read-only or updating, chosen by the rng."""
    updating = rng.random() < 0.5
    locals_ = [("l", HANDLE)] + ([] if updating else [("v", INT)])
    walker = builder.procedure(proc_name, params=[("h", HANDLE)], locals=locals_)
    branch = walker.if_(not_nil("h"))
    if updating:
        branch.then.assign(
            ("h", "value"),
            ast.BinOp("+", field("h", "value"), lit(rng.randint(1, 9))),
        )
    else:
        branch.then.assign("v", field("h", "value"))
    branch.then.assign("l", field("h", "left"))
    branch.then.call(proc_name, name("l"))


def _add_tree_walker(builder: ProgramBuilder, proc_name: str, rng: random.Random) -> None:
    """A recursive tree walker: reader, updater, or child-swapping mutator."""
    style = rng.choice(("read", "update", "swap"))
    locals_ = [("l", HANDLE), ("r", HANDLE)] + ([("v", INT)] if style == "read" else [])
    walker = builder.procedure(proc_name, params=[("h", HANDLE)], locals=locals_)
    branch = walker.if_(not_nil("h"))
    if style == "read":
        branch.then.assign("v", field("h", "value"))
    elif style == "update":
        branch.then.assign(
            ("h", "value"),
            ast.BinOp("+", field("h", "value"), lit(rng.randint(1, 9))),
        )
    branch.then.assign("l", field("h", "left"))
    branch.then.assign("r", field("h", "right"))
    branch.then.call(proc_name, name("l"))
    branch.then.call(proc_name, name("r"))
    if style == "swap":
        branch.then.assign(("h", "left"), name("r"))
        branch.then.assign(("h", "right"), name("l"))


def _spine_walk(main, cursor: str, counter: str, link: str = "left") -> None:
    """Append ``cursor``'s while-loop spine walk to ``main`` (Figure 3 shape)."""
    loop = main.while_(not_nil(cursor))
    loop.assign(counter, ast.BinOp("+", name(counter), lit(1)))
    loop.assign(cursor, field(cursor, link))


def _list_scenario(program_name: str, rng: random.Random, config: GeneratorConfig) -> ast.Program:
    """Recursive list walkers over one shared left-linked list."""
    builder = ProgramBuilder(program_name)
    walker_names = [f"lwalk{index}" for index in range(config.procedures)]
    locals_ = [("head", HANDLE)] + [(f"c{i}", HANDLE) for i in range(len(walker_names))]
    use_spine = rng.random() < 0.7
    if use_spine:
        locals_ += [("w", HANDLE), ("steps", INT)]
    main = builder.procedure("main", locals=locals_)
    main.call_assign("head", "makelist", lit(config.depth))
    previous = "head"
    for index, walker in enumerate(walker_names):
        cursor = f"c{index}"
        if rng.random() < config.aliasing:
            main.assign(cursor, name(previous))  # aliased with the previous target
        else:
            main.assign(cursor, field(previous, "left"))  # strictly below it
        main.call(walker, name(cursor))
        previous = cursor
    if use_spine:
        main.assign("w", name("head"))
        main.assign("steps", lit(0))
        _spine_walk(main, "w", "steps")
    for walker in walker_names:
        _add_list_walker(builder, walker, rng)
    _build_list_function(builder)
    return builder.build()


def _tree_scenario(program_name: str, rng: random.Random, config: GeneratorConfig) -> ast.Program:
    """Recursive tree walkers over one shared binary tree."""
    builder = ProgramBuilder(program_name)
    walker_names = [f"twalk{index}" for index in range(config.procedures)]
    main = builder.procedure(
        "main", locals=[("root", HANDLE), ("l", HANDLE), ("r", HANDLE)]
    )
    main.call_assign("root", "build", lit(config.depth))
    main.assign("l", field("root", "left"))
    main.assign("r", field("root", "right"))
    targets = ("l", "r")
    for index, walker in enumerate(walker_names):
        if rng.random() < config.aliasing:
            # Overlapping pair: the whole tree, then one of its subtrees.
            main.call(walker, name("root"))
            main.call(walker, name(rng.choice(targets)))
        else:
            # Disjoint pair: the two sibling subtrees.
            main.call(walker, name("l"))
            main.call(walker, name("r"))
    for walker in walker_names:
        _add_tree_walker(builder, walker, rng)
    _build_tree_function(builder)
    return builder.build()


def _web_scenario(program_name: str, rng: random.Random, config: GeneratorConfig) -> ast.Program:
    """A straight-line handle web: a chain of live handles with random overlap."""
    builder = ProgramBuilder(program_name)
    chain = max(3, min(6, config.depth + 1))
    locals_ = [("root", HANDLE)] + [(f"h{i}", HANDLE) for i in range(chain)]
    main = builder.procedure("main", locals=locals_)
    main.assign("root", new())
    previous = "root"
    grown: List[str] = ["root"]
    for index in range(chain):
        handle = f"h{index}"
        if len(grown) > 1 and rng.random() < config.aliasing:
            main.assign(handle, name(rng.choice(grown)))  # direct alias
        else:
            main.assign((previous, "left"), new())
            main.assign(handle, field(previous, "left"))
            previous = handle
        grown.append(handle)
    for index in range(chain):
        if rng.random() < 0.5:
            main.assign((f"h{index}", "value"), lit(rng.randint(-99, 99)))
    if rng.random() < config.aliasing:
        # One destructive cross-link: introduces (possible) sharing.
        first, second = rng.sample(grown[1:], 2)
        main.assign((first, "right"), name(second))
    return builder.build()


def _mixed_scenario(program_name: str, rng: random.Random, config: GeneratorConfig) -> ast.Program:
    """Tree build + walkers + a spine walk + web-style handle grabs."""
    builder = ProgramBuilder(program_name)
    walker_names = [f"mwalk{index}" for index in range(max(1, config.procedures - 1))]
    main = builder.procedure(
        "main",
        locals=[
            ("root", HANDLE),
            ("l", HANDLE),
            ("lr", HANDLE),
            ("w", HANDLE),
            ("steps", INT),
        ],
    )
    main.call_assign("root", "build", lit(config.depth))
    main.assign("l", field("root", "left"))
    main.assign("lr", field("l", "right"))
    for walker in walker_names:
        if rng.random() < config.aliasing:
            main.call(walker, name("root"))
            main.call(walker, name("l"))
        else:
            main.call(walker, name("l"))
            main.call(walker, name("lr"))
    main.assign("w", name("root"))
    main.assign("steps", lit(0))
    _spine_walk(main, "w", "steps", link=rng.choice(("left", "right")))
    for walker in walker_names:
        _add_tree_walker(builder, walker, rng)
    _build_tree_function(builder)
    return builder.build()


def _dag_scenario(program_name: str, rng: random.Random, config: GeneratorConfig) -> ast.Program:
    """Heavy cross-linked sharing: a tree whose subtrees get linked under each
    other — the paper's hardest aliasing case (the structure becomes a DAG).

    ``main`` grabs all four grandchild handles, cross-links several sibling
    subtrees (always "later" under "earlier" in a fixed order, so the result
    is acyclic and executable), and then runs walkers over overlapping
    regions.  The composite paths the destructive links create drive
    path-matrix entries past ``max_paths_per_entry`` — the path-set-collapse
    widening — and every link raises the expected sharing diagnostics.
    """
    builder = ProgramBuilder(program_name)
    walker_names = [f"gwalk{index}" for index in range(config.procedures)]
    grabs = ["l", "r", "ll", "lr", "rl", "rr"]
    main = builder.procedure(
        "main", locals=[("root", HANDLE)] + [(grab, HANDLE) for grab in grabs]
    )
    # Depth at least 3 so every grandchild grab is non-nil at runtime.
    main.call_assign("root", "build", lit(max(3, config.depth)))
    main.assign("l", field("root", "left"))
    main.assign("r", field("root", "right"))
    main.assign("ll", field("l", "left"))
    main.assign("lr", field("l", "right"))
    main.assign("rl", field("r", "left"))
    main.assign("rr", field("r", "right"))

    # Cross-link sibling subtrees below one another.  Linking only X.f := Y
    # with X before Y in `order` keeps the structure acyclic (Y never links
    # back under X), so the program still executes end to end.
    order = ["ll", "lr", "rl", "rr"]
    links = [("ll", "right", "lr"), ("lr", "left", "rl"), ("rl", "right", "rr")]
    for upper, link, lower in links:
        if rng.random() < max(0.5, config.aliasing):
            main.assign((upper, link), name(lower))
    # One guaranteed long-range share plus an optional aliased handle copy.
    main.assign(("ll", "left"), name("rr"))
    if rng.random() < config.aliasing:
        first, second = rng.sample(order, 2)
        main.assign(first, name(second))

    # Walkers over overlapping regions (an ancestor and one of its shared
    # descendants), so the interference analysis sees the sharing.
    for walker in walker_names:
        upper = rng.choice(("root", "l", "r"))
        lower = rng.choice(order)
        main.call(walker, name(upper))
        main.call(walker, name(lower))
    for walker in walker_names:
        _add_tree_walker(builder, walker, rng)
    _build_tree_function(builder)
    return builder.build()


def _deep_scenario(program_name: str, rng: random.Random, config: GeneratorConfig) -> ast.Program:
    """Long recursion chains over a deeper call graph.

    ``main`` enters a chain of procedures ``step0 → step1 → ...`` that each
    descend one link before calling the next, ending in a recursive walker
    that descends *two alternating* links (``h.left.right``) per recursive
    call.  The alternation makes the recursive entry matrix accumulate
    ``L1R1L1R1...`` paths whose segment count outgrows ``max_segments`` —
    the segment-collapse widening — while the exact repetition counts
    outgrow ``max_exact_count`` on the straight-link chain.
    """
    builder = ProgramBuilder(program_name)
    chain = max(2, min(6, config.procedures + config.depth // 2))
    main = builder.procedure("main", locals=[("root", HANDLE)])
    # Depth at least 4 so the two-link recursive descent makes progress.
    main.call_assign("root", "build", lit(max(4, config.depth)))
    main.call("step0", name("root"))

    # The call-graph chain: step{i} descends one (alternating) link.
    for index in range(chain - 1):
        step = builder.procedure(
            f"step{index}", params=[("h", HANDLE)], locals=[("n", HANDLE)]
        )
        branch = step.if_(not_nil("h"))
        link = "left" if index % 2 == 0 else "right"
        branch.then.assign("n", field("h", link))
        branch.then.call(f"step{index + 1}", name("n"))

    # The chain's last link: a deep recursive walker descending two
    # alternating links per call (read-only or updating, chosen by the rng).
    updating = rng.random() < 0.5
    locals_ = [("l", HANDLE), ("lr", HANDLE)] + ([] if updating else [("v", INT)])
    walker = builder.procedure(
        f"step{chain - 1}", params=[("h", HANDLE)], locals=locals_
    )
    branch = walker.if_(not_nil("h"))
    if updating:
        branch.then.assign(
            ("h", "value"),
            ast.BinOp("+", field("h", "value"), lit(rng.randint(1, 9))),
        )
    else:
        branch.then.assign("v", field("h", "value"))
    branch.then.assign("l", field("h", "left"))
    inner = branch.then.if_(not_nil("l"))
    inner.then.assign("lr", field("l", "right"))
    inner.then.call(f"step{chain - 1}", name("lr"))
    _build_tree_function(builder)
    return builder.build()


_FAMILY_BUILDERS = {
    "list": _list_scenario,
    "tree": _tree_scenario,
    "web": _web_scenario,
    "mixed": _mixed_scenario,
    "dag": _dag_scenario,
    "deep": _deep_scenario,
}


# ---------------------------------------------------------------------------
# Seeded edit scripts (the incremental re-analysis workload)
# ---------------------------------------------------------------------------

#: Edit kinds the script generator can produce.  ``insert`` adds a neutral
#: self-copy (``x := x``) — a semantic no-op, so dirty-seeded re-analysis of
#: the edited program must reproduce the old result bit-identically on the
#: untouched procedures.  The other kinds genuinely change the program.
EDIT_KINDS = ("insert", "delete", "swap", "relink", "add_call")

#: Random draws per step before falling back to a guaranteed neutral insert.
_MAX_EDIT_ATTEMPTS = 24


@dataclass(frozen=True)
class EditStep:
    """One concrete edit, replayable without the generator's rng.

    ``position`` indexes the *top-level* statement list of the target
    procedure's body **at the time the step applies** (steps of a script
    compose in order, each seeing the previous step's output).  ``payload``
    carries the kind-specific operands: the variable name for ``insert``,
    ``(callee, argument)`` for ``add_call``, nothing for the rest.
    """

    kind: str
    procedure: str
    position: int
    payload: Tuple[str, ...] = ()

    def describe(self) -> str:
        detail = f"({', '.join(self.payload)})" if self.payload else ""
        return f"{self.kind}{detail} @ {self.procedure}[{self.position}]"

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "procedure": self.procedure,
            "position": self.position,
            "payload": list(self.payload),
        }


@dataclass(frozen=True)
class EditScript:
    """A deterministic sequence of :class:`EditStep`\\ s over one program."""

    seed: int
    steps: Tuple[EditStep, ...]

    def __len__(self) -> int:
        return len(self.steps)

    def as_dict(self) -> Dict[str, object]:
        return {"seed": self.seed, "steps": [step.as_dict() for step in self.steps]}


@dataclass(frozen=True)
class EditedPair:
    """An ``(old, new)`` program-source pair related by an edit script."""

    old_source: str
    new_source: str
    script: EditScript


def _apply_step(program: ast.Program, step: EditStep) -> None:
    """Apply one step to a (surface) program in place."""
    proc = program.callable(step.procedure)
    body = proc.body.stmts
    if step.kind == "insert":
        (var,) = step.payload
        body.insert(step.position, ast.Assign(lhs=ast.Name(var), rhs=ast.Name(var)))
    elif step.kind == "delete":
        del body[step.position]
    elif step.kind == "swap":
        body[step.position], body[step.position + 1] = (
            body[step.position + 1],
            body[step.position],
        )
    elif step.kind == "relink":
        if not _flip_first_link(body[step.position]):
            raise ValueError(f"edit step {step.describe()} found no link field to flip")
    elif step.kind == "add_call":
        callee, var = step.payload
        body.insert(step.position, ast.ProcCall(name=callee, args=[ast.Name(var)]))
    else:
        raise ValueError(f"unknown edit kind {step.kind!r}; known: {list(EDIT_KINDS)}")


def _flip_first_link(stmt: ast.Stmt) -> bool:
    """Flip the first ``left``/``right`` field access in ``stmt``; False if none."""
    for expr in ast.stmt_expressions(stmt):
        for sub in ast.walk_expr(expr):
            if isinstance(sub, ast.FieldAccess) and sub.field_name.is_link:
                sub.field_name = (
                    ast.Field.RIGHT if sub.field_name is ast.Field.LEFT else ast.Field.LEFT
                )
                return True
    return False


def _handle_vars(proc: ast.Procedure) -> List[str]:
    return [d.name for d in list(proc.params) + list(proc.locals) if d.type is ast.SilType.HANDLE]


def _propose_step(
    program: ast.Program, proc_name: str, kind: str, rng: random.Random
) -> Optional[EditStep]:
    """A candidate step of ``kind`` against ``proc_name``, or None if inapplicable."""
    proc = program.callable(proc_name)
    body = proc.body.stmts
    if kind == "insert":
        handles = _handle_vars(proc)
        pool = handles or [d.name for d in list(proc.params) + list(proc.locals)]
        if not pool:
            return None
        var = rng.choice(pool)
        return EditStep("insert", proc_name, rng.randint(0, len(body)), (var,))
    if kind == "delete":
        if len(body) < 2:
            return None
        return EditStep("delete", proc_name, rng.randrange(len(body)))
    if kind == "swap":
        spots = [
            p
            for p in range(len(body) - 1)
            if statement_label(body[p]) != statement_label(body[p + 1])
        ]
        if not spots:
            return None
        return EditStep("swap", proc_name, rng.choice(spots))
    if kind == "relink":
        spots = [
            p
            for p, stmt in enumerate(body)
            if any(
                isinstance(sub, ast.FieldAccess) and sub.field_name.is_link
                for expr in ast.stmt_expressions(stmt)
                for sub in ast.walk_expr(expr)
            )
        ]
        if not spots:
            return None
        return EditStep("relink", proc_name, rng.choice(spots))
    if kind == "add_call":
        callees = [
            p.name
            for p in program.procedures
            if p.name != "main" and len(p.params) == 1 and p.params[0].type is ast.SilType.HANDLE
        ]
        handles = _handle_vars(proc)
        if not callees or not handles:
            return None
        return EditStep(
            "add_call",
            proc_name,
            rng.randint(0, len(body)),
            (rng.choice(callees), rng.choice(handles)),
        )
    raise KeyError(f"unknown edit kind {kind!r}; known: {list(EDIT_KINDS)}")


def _step_validates(program: ast.Program, step: EditStep) -> bool:
    """True iff the edited program survives the full front end (print + reparse)."""
    trial = ast.clone_program(program)
    try:
        _apply_step(trial, step)
        parse_and_normalize(format_program(trial))
    except Exception:  # noqa: BLE001 - any front-end rejection voids the step
        return False
    return True


def _draw_step(
    program: ast.Program,
    rng: random.Random,
    allowed: Sequence[str],
    target_procedure: Optional[str],
) -> EditStep:
    """One validated step; bounded random draws, then a neutral-insert fallback."""
    names = [proc.name for proc in program.all_callables]
    for _ in range(_MAX_EDIT_ATTEMPTS):
        kind = allowed[rng.randrange(len(allowed))]
        proc_name = target_procedure if target_procedure is not None else rng.choice(names)
        candidate = _propose_step(program, proc_name, kind, rng)
        if candidate is not None and _step_validates(program, candidate):
            return candidate
    fallback = _propose_step(program, target_procedure or "main", "insert", rng)
    if fallback is not None and _step_validates(program, fallback):
        return fallback
    raise ValueError(
        f"could not synthesize a valid edit step for program {program.name!r} "
        f"(kinds {list(allowed)}, target {target_procedure!r})"
    )


def generate_edit_script(
    source: str,
    seed: int,
    edits: int = 1,
    kinds: Optional[Sequence[str]] = None,
    target_procedure: Optional[str] = None,
) -> EditScript:
    """A deterministic edit script of ``edits`` steps over ``source``.

    Each step is drawn at random (seeded), applied to a working copy, and
    **validated through the real front end** — print, reparse, type check,
    normalize — before it is accepted; a step the front end rejects is
    redrawn, and after :data:`_MAX_EDIT_ATTEMPTS` failed draws the generator
    falls back to a guaranteed-valid neutral insert.  Restrict ``kinds``
    (e.g. ``("insert",)``) and pin ``target_procedure`` for the fully
    deterministic single-procedure edits CI replays.
    """
    allowed = tuple(kinds) if kinds else EDIT_KINDS
    for kind in allowed:
        if kind not in EDIT_KINDS:
            raise KeyError(f"unknown edit kind {kind!r}; known: {list(EDIT_KINDS)}")
    program = parse_program(source)
    if target_procedure is not None:
        program.callable(target_procedure)  # raise early on a bad target
    rng = random.Random(seed)
    steps: List[EditStep] = []
    for _ in range(max(1, int(edits))):
        step = _draw_step(program, rng, allowed, target_procedure)
        _apply_step(program, step)
        steps.append(step)
    return EditScript(seed=seed, steps=tuple(steps))


def apply_edit_script(source: str, script: EditScript) -> str:
    """Replay ``script`` over ``source``; returns the validated edited source."""
    program = parse_program(source)
    for step in script.steps:
        _apply_step(program, step)
    new_source = format_program(program)
    parse_and_normalize(new_source)  # validate through the real front end
    return new_source


def generate_edited_pair(
    source: str,
    seed: int,
    edits: int = 1,
    kinds: Optional[Sequence[str]] = None,
    target_procedure: Optional[str] = None,
) -> EditedPair:
    """Generate a script over ``source`` and return the ``(old, new)`` pair."""
    script = generate_edit_script(
        source, seed, edits=edits, kinds=kinds, target_procedure=target_procedure
    )
    return EditedPair(
        old_source=source, new_source=apply_edit_script(source, script), script=script
    )


def make_edit_bench_scenario(procedures: int, seed: int = 0, depth: int = 4) -> Scenario:
    """A program whose *size* scales independently of any edit's blast radius.

    ``main`` builds one list and calls ``procedures`` distinct recursive
    walkers on it.  The walkers are mutually independent, so an edit inside
    walker ``k`` dirties only ``{walk<k>, main}`` no matter how many other
    walkers exist — exactly the shape the edit-replay bench needs to show
    re-analysis cost scaling with edit size rather than program size.
    Unlike the family generators this takes no :class:`GeneratorConfig`
    clamp: ``procedures`` may be arbitrarily large.
    """
    procedures = max(1, int(procedures))
    rng = random.Random(seed)
    program_name = f"editbench_p{procedures}_s{seed}"
    builder = ProgramBuilder(program_name)
    walker_names = [f"walk{index}" for index in range(procedures)]
    main = builder.procedure("main", locals=[("head", HANDLE)])
    main.call_assign("head", "makelist", lit(depth))
    for walker in walker_names:
        main.call(walker, name("head"))
    for walker in walker_names:
        _add_list_walker(builder, walker, rng)
    _build_list_function(builder)
    source = format_program(builder.build())
    parse_and_normalize(source)  # validate through the real front end
    return Scenario(
        name=program_name,
        family="editbench",
        seed=seed,
        config=GeneratorConfig(family="list", procedures=procedures, depth=depth),
        source=source,
    )
