"""Workloads: the paper's programs plus generators for scaling studies."""

from .generators import (
    make_handle_web_program,
    make_independent_loads_program,
    make_recursive_walker_program,
    perfect_tree_values,
    random_tree_spec,
)
from .suite import TREE_PRESERVING, WORKLOADS, analyze_suite, load, source, with_depth

__all__ = [
    "WORKLOADS",
    "TREE_PRESERVING",
    "load",
    "analyze_suite",
    "source",
    "with_depth",
    "random_tree_spec",
    "perfect_tree_values",
    "make_independent_loads_program",
    "make_handle_web_program",
    "make_recursive_walker_program",
]
