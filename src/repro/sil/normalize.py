"""Normalization of SIL programs into *basic handle statements*.

The paper (Section 3.2) notes that complex statements such as
``a.left.right := b.right`` are "easily translated into a sequence of basic
handle statements (t1 := a.left; t2 := b.right; t1.right := t2)".  This
module performs that translation:

* every surface :class:`~repro.sil.ast.Assign` is lowered into one of the
  basic statement forms (``AssignNil``, ``AssignNew``, ``CopyHandle``,
  ``LoadField``, ``StoreField``, ``LoadValue``, ``StoreValue``,
  ``ScalarAssign``) or a :class:`~repro.sil.ast.FuncAssign`;
* chained field accesses are flattened by introducing fresh handle
  temporaries (``_t1``, ``_t2``, ...);
* handle-typed arguments of procedure/function calls are reduced to simple
  variable names;
* ``a.value`` reads and function calls buried inside integer expressions are
  hoisted into temporaries so that the expressions attached to
  ``ScalarAssign``/``StoreValue`` are *pure* (variables, literals,
  arithmetic only).

Conditions of ``if``/``while`` are left untouched (they only *read* the
structure, which the analysis and interpreter handle directly); function
calls are not permitted inside conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from . import ast
from .errors import NormalizationError
from .typecheck import ExprType, ProcedureTypes, TypeInfo, check_program


@dataclass
class _TempAllocator:
    """Allocates fresh temporary names for one procedure."""

    taken: set
    prefix: str = "_t"
    counter: int = 0
    new_decls: List[ast.VarDecl] = field(default_factory=list)

    def fresh(self, sil_type: ast.SilType) -> str:
        while True:
            self.counter += 1
            name = f"{self.prefix}{self.counter}"
            if name not in self.taken:
                self.taken.add(name)
                self.new_decls.append(ast.VarDecl(name=name, type=sil_type))
                return name


class Normalizer:
    """Lowers one procedure at a time into core form."""

    def __init__(self, program: ast.Program, info: TypeInfo):
        self.program = program
        self.info = info

    # ------------------------------------------------------------------
    # Program / procedure level
    # ------------------------------------------------------------------

    def normalize_program(self) -> ast.Program:
        new_program = ast.clone_program(self.program)
        for proc in new_program.all_callables:
            self._normalize_procedure(proc)
        return new_program

    def _normalize_procedure(self, proc: ast.Procedure) -> None:
        scope = self.info.for_procedure(proc.name)
        taken = set(scope.variables.keys())
        alloc = _TempAllocator(taken=taken)
        body = self._normalize_stmt(proc.body, proc, scope, alloc)
        if not isinstance(body, ast.Block):
            body = ast.Block(stmts=[body])
        proc.body = body
        proc.locals = proc.locals + alloc.new_decls

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _normalize_stmt(
        self,
        stmt: ast.Stmt,
        proc: ast.Procedure,
        scope: ProcedureTypes,
        alloc: _TempAllocator,
    ) -> ast.Stmt:
        if isinstance(stmt, ast.Block):
            new_stmts: List[ast.Stmt] = []
            for inner in stmt.stmts:
                lowered = self._normalize_stmt(inner, proc, scope, alloc)
                if isinstance(lowered, ast.Block) and not isinstance(inner, ast.Block):
                    # Flatten statement sequences produced by lowering a
                    # single surface statement, but keep explicit nested
                    # blocks from the source program.
                    new_stmts.extend(lowered.stmts)
                else:
                    new_stmts.append(lowered)
            return ast.Block(stmts=new_stmts, loc=stmt.loc)
        if isinstance(stmt, ast.ParallelStmt):
            branches = [self._normalize_stmt(b, proc, scope, alloc) for b in stmt.branches]
            return ast.ParallelStmt(branches=branches, loc=stmt.loc)
        if isinstance(stmt, ast.IfStmt):
            self._check_condition(stmt.cond)
            then_branch = self._normalize_stmt(stmt.then_branch, proc, scope, alloc)
            else_branch = (
                self._normalize_stmt(stmt.else_branch, proc, scope, alloc)
                if stmt.else_branch is not None
                else None
            )
            return ast.IfStmt(
                cond=stmt.cond, then_branch=then_branch, else_branch=else_branch, loc=stmt.loc
            )
        if isinstance(stmt, ast.WhileStmt):
            self._check_condition(stmt.cond)
            body = self._normalize_stmt(stmt.body, proc, scope, alloc)
            return ast.WhileStmt(cond=stmt.cond, body=body, loc=stmt.loc)
        if isinstance(stmt, ast.Assign):
            return self._wrap(self._lower_assign(stmt, scope, alloc), stmt.loc)
        if isinstance(stmt, ast.ProcCall):
            prelude, args = self._normalize_call_args(stmt.name, stmt.args, scope, alloc, stmt.loc)
            return self._wrap(prelude + [ast.ProcCall(name=stmt.name, args=args, loc=stmt.loc)], stmt.loc)
        if isinstance(stmt, ast.FuncAssign):
            prelude, args = self._normalize_call_args(stmt.name, stmt.args, scope, alloc, stmt.loc)
            return self._wrap(
                prelude
                + [ast.FuncAssign(target=stmt.target, name=stmt.name, args=args, loc=stmt.loc)],
                stmt.loc,
            )
        if isinstance(stmt, (ast.BasicStmt, ast.SkipStmt)):
            return stmt
        raise NormalizationError(f"cannot normalize statement {type(stmt).__name__}", stmt.loc)

    @staticmethod
    def _wrap(stmts: List[ast.Stmt], loc) -> ast.Stmt:
        if len(stmts) == 1:
            return stmts[0]
        return ast.Block(stmts=stmts, loc=loc)

    def _check_condition(self, cond: ast.Expr) -> None:
        for sub in ast.walk_expr(cond):
            if isinstance(sub, ast.CallExpr):
                raise NormalizationError(
                    "function calls are not permitted inside conditions", cond.loc
                )
            if isinstance(sub, ast.NewExpr):
                raise NormalizationError("new() is not permitted inside conditions", cond.loc)

    # ------------------------------------------------------------------
    # Assignment lowering
    # ------------------------------------------------------------------

    def _lower_assign(
        self, stmt: ast.Assign, scope: ProcedureTypes, alloc: _TempAllocator
    ) -> List[ast.Stmt]:
        lhs, rhs, loc = stmt.lhs, stmt.rhs, stmt.loc

        if isinstance(lhs, ast.Name):
            target = lhs.ident
            if scope.type_of(target) is ast.SilType.HANDLE:
                return self._lower_handle_assign(target, rhs, scope, alloc, loc)
            return self._lower_int_assign(target, rhs, scope, alloc, loc)

        if isinstance(lhs, ast.FieldAccess):
            prelude, base_name = self._reduce_to_handle_name(lhs.base, scope, alloc, loc)
            if lhs.field_name is ast.Field.VALUE:
                more, pure = self._purify_int_expr(rhs, scope, alloc, loc)
                return prelude + more + [ast.StoreValue(target=base_name, expr=pure, loc=loc)]
            # left / right field update
            more, source = self._reduce_to_optional_handle_name(rhs, scope, alloc, loc)
            return prelude + more + [
                ast.StoreField(target=base_name, field_name=lhs.field_name, source=source, loc=loc)
            ]

        raise NormalizationError("left side of assignment must be a variable or field access", loc)

    def _lower_handle_assign(
        self, target: str, rhs: ast.Expr, scope: ProcedureTypes, alloc: _TempAllocator, loc
    ) -> List[ast.Stmt]:
        if isinstance(rhs, ast.NilLit):
            return [ast.AssignNil(target=target, loc=loc)]
        if isinstance(rhs, ast.NewExpr):
            return [ast.AssignNew(target=target, loc=loc)]
        if isinstance(rhs, ast.Name):
            return [ast.CopyHandle(target=target, source=rhs.ident, loc=loc)]
        if isinstance(rhs, ast.FieldAccess):
            if rhs.field_name is ast.Field.VALUE:
                raise NormalizationError(
                    f"cannot assign an int expression to handle {target!r}", loc
                )
            prelude, base_name = self._reduce_to_handle_name(rhs.base, scope, alloc, loc)
            return prelude + [
                ast.LoadField(target=target, source=base_name, field_name=rhs.field_name, loc=loc)
            ]
        if isinstance(rhs, ast.CallExpr):
            prelude, args = self._normalize_call_args(rhs.name, rhs.args, scope, alloc, loc)
            return prelude + [ast.FuncAssign(target=target, name=rhs.name, args=args, loc=loc)]
        raise NormalizationError(f"cannot assign this expression to handle {target!r}", loc)

    def _lower_int_assign(
        self, target: str, rhs: ast.Expr, scope: ProcedureTypes, alloc: _TempAllocator, loc
    ) -> List[ast.Stmt]:
        if isinstance(rhs, ast.CallExpr):
            prelude, args = self._normalize_call_args(rhs.name, rhs.args, scope, alloc, loc)
            return prelude + [ast.FuncAssign(target=target, name=rhs.name, args=args, loc=loc)]
        if isinstance(rhs, ast.FieldAccess) and rhs.field_name is ast.Field.VALUE:
            prelude, base_name = self._reduce_to_handle_name(rhs.base, scope, alloc, loc)
            return prelude + [ast.LoadValue(target=target, source=base_name, loc=loc)]
        prelude, pure = self._purify_int_expr(rhs, scope, alloc, loc)
        return prelude + [ast.ScalarAssign(target=target, expr=pure, loc=loc)]

    # ------------------------------------------------------------------
    # Expression helpers
    # ------------------------------------------------------------------

    def _reduce_to_handle_name(
        self, expr: ast.Expr, scope: ProcedureTypes, alloc: _TempAllocator, loc
    ) -> Tuple[List[ast.Stmt], str]:
        """Reduce a handle-valued expression to a simple variable name."""
        if isinstance(expr, ast.Name):
            return [], expr.ident
        if isinstance(expr, ast.FieldAccess):
            if expr.field_name is ast.Field.VALUE:
                raise NormalizationError("expected a handle expression, got '.value'", loc)
            prelude, base_name = self._reduce_to_handle_name(expr.base, scope, alloc, loc)
            temp = alloc.fresh(ast.SilType.HANDLE)
            scope.variables[temp] = ast.SilType.HANDLE
            prelude = prelude + [
                ast.LoadField(target=temp, source=base_name, field_name=expr.field_name, loc=loc)
            ]
            return prelude, temp
        if isinstance(expr, ast.NewExpr):
            temp = alloc.fresh(ast.SilType.HANDLE)
            scope.variables[temp] = ast.SilType.HANDLE
            return [ast.AssignNew(target=temp, loc=loc)], temp
        if isinstance(expr, ast.NilLit):
            temp = alloc.fresh(ast.SilType.HANDLE)
            scope.variables[temp] = ast.SilType.HANDLE
            return [ast.AssignNil(target=temp, loc=loc)], temp
        if isinstance(expr, ast.CallExpr):
            prelude, args = self._normalize_call_args(expr.name, expr.args, scope, alloc, loc)
            temp = alloc.fresh(ast.SilType.HANDLE)
            scope.variables[temp] = ast.SilType.HANDLE
            return prelude + [ast.FuncAssign(target=temp, name=expr.name, args=args, loc=loc)], temp
        raise NormalizationError("expected a handle-valued expression", loc)

    def _reduce_to_optional_handle_name(
        self, expr: ast.Expr, scope: ProcedureTypes, alloc: _TempAllocator, loc
    ) -> Tuple[List[ast.Stmt], Optional[str]]:
        """Like :meth:`_reduce_to_handle_name` but maps ``nil`` to ``None``."""
        if isinstance(expr, ast.NilLit):
            return [], None
        return self._reduce_to_handle_name(expr, scope, alloc, loc)

    def _purify_int_expr(
        self, expr: ast.Expr, scope: ProcedureTypes, alloc: _TempAllocator, loc
    ) -> Tuple[List[ast.Stmt], ast.Expr]:
        """Hoist complex ``.value`` reads and function calls out of an int expression.

        A ``.value`` read whose base is already a simple handle variable
        (``h.value``) is left in place — it is a pure read and keeping it
        allows statements such as ``h.value := h.value + n`` (Figure 7/8) to
        remain single basic statements.  Reads through longer chains
        (``h.left.value``) are hoisted via temporaries.
        """
        if isinstance(expr, ast.IntLit):
            return [], expr
        if isinstance(expr, ast.Name):
            return [], expr
        if isinstance(expr, ast.FieldAccess):
            if expr.field_name is not ast.Field.VALUE:
                raise NormalizationError("handle expression used where an int is required", loc)
            if isinstance(expr.base, ast.Name):
                return [], expr
            prelude, base_name = self._reduce_to_handle_name(expr.base, scope, alloc, loc)
            return prelude, ast.FieldAccess(ast.Name(base_name, loc=loc), ast.Field.VALUE, loc=loc)
        if isinstance(expr, ast.CallExpr):
            call_prelude, args = self._normalize_call_args(expr.name, expr.args, scope, alloc, loc)
            temp = alloc.fresh(ast.SilType.INT)
            scope.variables[temp] = ast.SilType.INT
            prelude = call_prelude + [
                ast.FuncAssign(target=temp, name=expr.name, args=args, loc=loc)
            ]
            return prelude, ast.Name(temp, loc=loc)
        if isinstance(expr, ast.UnOp):
            prelude, operand = self._purify_int_expr(expr.operand, scope, alloc, loc)
            return prelude, ast.UnOp(expr.op, operand, loc=expr.loc)
        if isinstance(expr, ast.BinOp):
            left_prelude, left = self._purify_int_expr(expr.left, scope, alloc, loc)
            right_prelude, right = self._purify_int_expr(expr.right, scope, alloc, loc)
            return left_prelude + right_prelude, ast.BinOp(expr.op, left, right, loc=expr.loc)
        raise NormalizationError("expression cannot appear in an integer context", loc)

    # ------------------------------------------------------------------
    # Call arguments
    # ------------------------------------------------------------------

    def _normalize_call_args(
        self,
        callee_name: str,
        args: List[ast.Expr],
        scope: ProcedureTypes,
        alloc: _TempAllocator,
        loc,
    ) -> Tuple[List[ast.Stmt], List[ast.Expr]]:
        try:
            callee = self.program.callable(callee_name)
        except KeyError:
            raise NormalizationError(f"call to undefined procedure {callee_name!r}", loc) from None
        prelude: List[ast.Stmt] = []
        new_args: List[ast.Expr] = []
        for arg, param in zip(args, callee.params):
            if param.type is ast.SilType.HANDLE:
                more, name = self._reduce_to_optional_handle_name(arg, scope, alloc, loc)
                prelude.extend(more)
                new_args.append(ast.NilLit(loc=loc) if name is None else ast.Name(name, loc=loc))
            else:
                more, pure = self._purify_int_expr(arg, scope, alloc, loc)
                prelude.extend(more)
                new_args.append(pure)
        return prelude, new_args


def normalize_program(
    program: ast.Program, info: Optional[TypeInfo] = None
) -> Tuple[ast.Program, TypeInfo]:
    """Lower ``program`` to core (basic-statement) form.

    Returns the lowered program together with fresh :class:`TypeInfo`
    (including the introduced temporaries).  The input program is not
    modified.
    """
    if info is None:
        info = check_program(program)
    normalizer = Normalizer(program, info)
    core = normalizer.normalize_program()
    new_info = check_program(core)
    return core, new_info


def parse_and_normalize(source: str) -> Tuple[ast.Program, TypeInfo]:
    """Convenience helper: parse, type check and normalize SIL source text."""
    from .parser import parse_program

    program = parse_program(source)
    return normalize_program(program)
