"""Semantic program deltas: what changed between two versions of a program.

Cross-run incremental re-analysis (see :mod:`repro.analysis.reanalysis`)
starts from one question: *given the program we solved last time and the
program we are asked to solve now, which procedures could possibly analyze
differently?*  This module answers it structurally, without running any
analysis:

* :func:`diff_programs` compares two (surface or normalized) programs and
  produces a typed :class:`ProgramDelta` — procedures added, removed,
  body-changed or signature-changed, plus the statement-level change spans
  of every changed body;
* statement content is identified by :func:`statement_identity` — the
  ``(node kind, exact inline rendering)`` pair — which is **the same
  canonical rendering contract the persistent cache codec keys on**
  (:func:`repro.cache.codec.canonical_statement` delegates here), so a
  delta's stale-statement set names exactly the store rows that can never
  be looked up again;
* :func:`statement_rebase_map` produces *stable statement identities across
  reparses*: for procedures whose bodies are textually identical, it maps
  each old statement object's ``id`` to the corresponding statement object
  of the new parse (positional, verified by identity), so ``id(stmt)``-keyed
  memos recorded against the old objects can be rebased onto the new ones.

The diff is deliberately *syntactic* and conservative: any difference in a
procedure's rendered body or declarations marks it changed.  Semantic
fan-out (a changed callee invalidating its callers' analyses) is the
re-analysis driver's job, via the reverse call graph — see
:func:`call_graph` / :func:`reverse_call_graph`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from . import ast
from .printer import _format_inline

#: ``(node kind, inline rendering)`` — the content identity of a statement.
StatementIdentity = Tuple[str, str]


def statement_identity(stmt: ast.Stmt) -> StatementIdentity:
    """The canonical content identity of one statement.

    Two statements with equal identities are structurally identical
    (including every nested statement — the inline rendering recurses), so
    they denote the same transfer function under any input matrix.  This is
    the rendering :func:`repro.cache.codec.canonical_statement` builds
    persistent transfer keys from.
    """
    return (type(stmt).__name__, _format_inline(stmt))


def statement_label(stmt: ast.Stmt) -> str:
    """The single-string form of :func:`statement_identity` stores index by."""
    return identity_label(statement_identity(stmt))


def identity_label(identity: StatementIdentity) -> str:
    """Collapse an identity pair into the label string stored with cache rows."""
    return "|".join(identity)


def _signature_of(proc: ast.Procedure) -> Tuple:
    """Everything about a procedure except its body, canonically rendered."""
    decls = tuple(
        (decl.name, decl.type.value) for decl in list(proc.params) + list(proc.locals)
    )
    if isinstance(proc, ast.Function):
        return ("function", proc.name, decls, proc.return_type.value, proc.return_var)
    return ("procedure", proc.name, decls)


def _body_identities(proc: ast.Procedure) -> List[StatementIdentity]:
    """Identities of every statement of ``proc``, in pre-order walk order."""
    return [statement_identity(stmt) for stmt in ast.walk_stmt(proc.body)]


@dataclass(frozen=True)
class ProcedureDelta:
    """One changed procedure, with its statement-level change spans."""

    name: str
    #: ``"body"`` or ``"signature"`` (a signature change implies re-analysis
    #: even when the body rendering is unchanged — formals shape the entry
    #: matrix and the summary).
    kind: str
    #: Statement identities present in the old body but not the new one
    #: (multiset difference): the statements whose cached transfers can
    #: never be keyed again by the new program.
    removed_statements: Tuple[StatementIdentity, ...] = ()
    #: Statement identities present in the new body but not the old one.
    added_statements: Tuple[StatementIdentity, ...] = ()


@dataclass(frozen=True)
class ProgramDelta:
    """The typed structural diff between two program versions."""

    old_name: str
    new_name: str
    #: Procedure names present only in the new program.
    added: Tuple[str, ...] = ()
    #: Procedure names present only in the old program.
    removed: Tuple[str, ...] = ()
    #: Procedures present in both whose body or signature changed.
    changed: Tuple[ProcedureDelta, ...] = ()
    #: Procedures present in both with identical signature and body.
    unchanged: Tuple[str, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)

    @property
    def dirty_procedures(self) -> FrozenSet[str]:
        """Directly-touched procedures: added or changed (not yet closed
        over the reverse call graph — see :func:`dirty_seed`)."""
        return frozenset(self.added) | {d.name for d in self.changed}

    @property
    def stale_statement_labels(self) -> FrozenSet[str]:
        """Labels of statements the edit removed — the persistent-store rows
        targeted invalidation should drop (removed procedures contribute
        their whole bodies via their ``ProcedureDelta`` when diffed; here,
        per-procedure spans plus removed procedures are both covered)."""
        labels: Set[str] = set()
        for proc_delta in self.changed:
            for identity in proc_delta.removed_statements:
                labels.add(identity_label(identity))
        return frozenset(labels)

    def as_dict(self) -> Dict[str, object]:
        """A JSON-able rendering (CLI / daemon responses)."""
        return {
            "old_program": self.old_name,
            "new_program": self.new_name,
            "added": list(self.added),
            "removed": list(self.removed),
            "changed": [
                {
                    "name": d.name,
                    "kind": d.kind,
                    "removed_statements": [list(i) for i in d.removed_statements],
                    "added_statements": [list(i) for i in d.added_statements],
                }
                for d in self.changed
            ],
            "unchanged": list(self.unchanged),
        }


def diff_programs(old: ast.Program, new: ast.Program) -> ProgramDelta:
    """Compute the :class:`ProgramDelta` between two program versions.

    Both programs may be surface or normalized, but the comparison is only
    meaningful between like forms (the re-analysis driver diffs normalized
    programs, so the identities match what the analysis and the cache saw).
    """
    old_procs = {proc.name: proc for proc in old.all_callables}
    new_procs = {proc.name: proc for proc in new.all_callables}

    added = tuple(sorted(name for name in new_procs if name not in old_procs))
    removed = tuple(sorted(name for name in old_procs if name not in new_procs))

    changed: List[ProcedureDelta] = []
    unchanged: List[str] = []
    for name in sorted(set(old_procs) & set(new_procs)):
        old_proc, new_proc = old_procs[name], new_procs[name]
        signature_changed = _signature_of(old_proc) != _signature_of(new_proc)
        old_ids = _body_identities(old_proc)
        new_ids = _body_identities(new_proc)
        if not signature_changed and old_ids == new_ids:
            unchanged.append(name)
            continue
        old_counts = Counter(old_ids)
        new_counts = Counter(new_ids)
        removed_stmts = tuple(sorted((old_counts - new_counts).elements()))
        added_stmts = tuple(sorted((new_counts - old_counts).elements()))
        changed.append(
            ProcedureDelta(
                name=name,
                kind="signature" if signature_changed else "body",
                removed_statements=removed_stmts,
                added_statements=added_stmts,
            )
        )

    return ProgramDelta(
        old_name=old.name,
        new_name=new.name,
        added=added,
        removed=removed,
        changed=tuple(changed),
        unchanged=tuple(unchanged),
    )


# ---------------------------------------------------------------------------
# Stable statement identities across reparses
# ---------------------------------------------------------------------------


def statement_rebase_map(
    old: ast.Program, new: ast.Program, names: Iterable[str]
) -> Dict[int, ast.Stmt]:
    """Map ``id(old statement) -> new statement`` for unchanged procedures.

    ``names`` must name procedures whose bodies are identical between the
    two programs (the delta's ``unchanged`` set); their pre-order statement
    walks are then the same shape, so positional pairing is exact.  Each
    pairing is verified against the identity rendering — a mismatch raises
    rather than silently rebasing a memo onto a different statement.
    """
    mapping: Dict[int, ast.Stmt] = {}
    for name in names:
        old_proc = old.callable(name)
        new_proc = new.callable(name)
        old_stmts = list(ast.walk_stmt(old_proc.body))
        new_stmts = list(ast.walk_stmt(new_proc.body))
        if len(old_stmts) != len(new_stmts):
            raise ValueError(
                f"procedure {name!r} was reported unchanged but its statement "
                f"count differs ({len(old_stmts)} vs {len(new_stmts)})"
            )
        for old_stmt, new_stmt in zip(old_stmts, new_stmts):
            if statement_identity(old_stmt) != statement_identity(new_stmt):
                raise ValueError(
                    f"procedure {name!r} was reported unchanged but statement "
                    f"{statement_identity(old_stmt)!r} does not match "
                    f"{statement_identity(new_stmt)!r}"
                )
            mapping[id(old_stmt)] = new_stmt
    return mapping


# ---------------------------------------------------------------------------
# Call-graph helpers for dirty seeding
# ---------------------------------------------------------------------------


def call_graph(program: ast.Program) -> Dict[str, Set[str]]:
    """``caller -> {callees}`` over every procedure and function call."""
    graph: Dict[str, Set[str]] = {proc.name: set() for proc in program.all_callables}
    for proc in program.all_callables:
        for stmt in ast.walk_stmt(proc.body):
            if isinstance(stmt, (ast.ProcCall, ast.FuncAssign)):
                graph[proc.name].add(stmt.name)
            # Surface programs may still carry calls as expressions.
            for expr in ast.stmt_expressions(stmt):
                for sub in ast.walk_expr(expr):
                    if isinstance(sub, ast.CallExpr):
                        graph[proc.name].add(sub.name)
    return graph


def reverse_call_graph(program: ast.Program) -> Dict[str, Set[str]]:
    """``callee -> {callers}`` — the edges dirty seeding walks."""
    reverse: Dict[str, Set[str]] = {proc.name: set() for proc in program.all_callables}
    for caller, callees in call_graph(program).items():
        for callee in callees:
            reverse.setdefault(callee, set()).add(caller)
    return reverse


def dirty_seed(delta: ProgramDelta, new: ast.Program) -> FrozenSet[str]:
    """The dirty worklist seed: directly-changed procedures plus every
    transitive caller in the new program's reverse call graph.

    A procedure's analysis depends on its own body, its entry matrix and
    the summaries of its *direct* callees; summaries are themselves
    transitive over the call graph, so closing the directly-changed set
    over reverse call edges covers every procedure whose recorded visits
    could differ from the previous run.  Procedures *called by* dirty ones
    are deliberately not seeded: if a dirty caller's projection to them
    actually changes, the entry-matrix-keyed visit memo misses on its own.
    """
    reverse = reverse_call_graph(new)
    dirty: Set[str] = set(delta.dirty_procedures)
    frontier = list(dirty)
    while frontier:
        name = frontier.pop()
        for caller in reverse.get(name, ()):
            if caller not in dirty:
                dirty.add(caller)
                frontier.append(caller)
    return frozenset(dirty)
