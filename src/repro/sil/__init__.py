"""SIL — the Structured Imperative Language of Hendren & Nicolau (1989).

This package contains the complete front end: AST (:mod:`repro.sil.ast`),
lexer, parser, type checker, normalizer (lowering to basic handle
statements), pretty printer and a programmatic builder API.
"""

from . import ast, builder
from .delta import (
    ProcedureDelta,
    ProgramDelta,
    call_graph,
    diff_programs,
    dirty_seed,
    reverse_call_graph,
    statement_identity,
    statement_label,
    statement_rebase_map,
)
from .errors import (
    LexError,
    NormalizationError,
    ParseError,
    SilError,
    SilRuntimeError,
    SourceLocation,
    StructureViolation,
    TypeCheckError,
)
from .lexer import Token, TokenKind, tokenize
from .normalize import normalize_program, parse_and_normalize
from .parser import parse_expression, parse_program, parse_statement
from .printer import format_expr, format_procedure, format_program, format_stmt
from .typecheck import ExprType, ProcedureTypes, TypeChecker, TypeInfo, check_program

__all__ = [
    "ast",
    "builder",
    "SilError",
    "LexError",
    "ParseError",
    "TypeCheckError",
    "NormalizationError",
    "SilRuntimeError",
    "StructureViolation",
    "SourceLocation",
    "Token",
    "TokenKind",
    "tokenize",
    "parse_program",
    "parse_statement",
    "parse_expression",
    "check_program",
    "TypeChecker",
    "TypeInfo",
    "ProcedureTypes",
    "ExprType",
    "normalize_program",
    "parse_and_normalize",
    "format_expr",
    "format_stmt",
    "format_procedure",
    "format_program",
    "ProcedureDelta",
    "ProgramDelta",
    "diff_programs",
    "dirty_seed",
    "call_graph",
    "reverse_call_graph",
    "statement_identity",
    "statement_label",
    "statement_rebase_map",
]
