"""Recursive-descent parser for SIL.

The grammar follows the abstract syntax of Figure 1 of the paper with a
Pascal-flavoured concrete syntax::

    program add_and_reverse

    procedure main()
      root, lside, rside: handle; i: int
    begin
      lside := root.left;
      rside := root.right;
      add_n(lside, 1);
      add_n(rside, -1);
      reverse(root)
    end

    procedure add_n(h: handle; n: int)
      l, r: handle
    begin
      if h <> nil then
      begin
        h.value := h.value + n;
        l := h.left;
        r := h.right;
        add_n(l, n);
        add_n(r, n)
      end
    end

Functions add a return type and a trailing ``return (ident)`` clause::

    function sum(h: handle): int
      s, ls, rs: int; l, r: handle
    begin ... end
    return (s)

Parallel statements use ``||``::

    l := h.left || r := h.right;

The parser produces *surface* ASTs (arbitrary :class:`~repro.sil.ast.Assign`
nodes); use :mod:`repro.sil.normalize` to lower them to basic handle
statements before running the analysis or the interpreter.
"""

from __future__ import annotations

from typing import List, Optional

from . import ast
from .errors import ParseError, SourceLocation
from .lexer import Token, TokenKind, tokenize

_FIELD_NAMES = {"left": ast.Field.LEFT, "right": ast.Field.RIGHT, "value": ast.Field.VALUE}

_REL_OPS = ("=", "<>", "<", "<=", ">", ">=")
_ADD_OPS = ("+", "-")
_MUL_OPS = ("*",)
_MUL_KEYWORDS = ("div", "mod")


class Parser:
    """Parses a token stream into a :class:`~repro.sil.ast.Program`."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.index = 0

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token or self.current
        return ParseError(f"{message} (found {token})", token.location)

    def _expect_symbol(self, symbol: str) -> Token:
        if not self.current.is_symbol(symbol):
            raise self._error(f"expected {symbol!r}")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise self._error(f"expected keyword {word!r}")
        return self._advance()

    def _expect_ident(self) -> Token:
        if self.current.kind is not TokenKind.IDENT:
            raise self._error("expected identifier")
        return self._advance()

    def _accept_symbol(self, symbol: str) -> bool:
        if self.current.is_symbol(symbol):
            self._advance()
            return True
        return False

    def _accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------
    # Program structure
    # ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        loc = self.current.location
        self._expect_keyword("program")
        name = self._expect_ident().text
        self._accept_symbol(";")

        procedures: List[ast.Procedure] = []
        functions: List[ast.Function] = []
        while not self.current.kind is TokenKind.EOF:
            if self.current.is_keyword("procedure"):
                procedures.append(self.parse_procedure())
            elif self.current.is_keyword("function"):
                functions.append(self.parse_function())
            else:
                raise self._error("expected 'procedure' or 'function'")
            self._accept_symbol(";")

        program = ast.Program(name=name, procedures=procedures, functions=functions, loc=loc)
        try:
            program.procedure("main")
        except KeyError:
            raise ParseError("program has no procedure 'main'", loc) from None
        return program

    def parse_procedure(self) -> ast.Procedure:
        loc = self.current.location
        self._expect_keyword("procedure")
        name = self._expect_ident().text
        params = self._parse_param_list()
        self._accept_symbol(";")
        locals_ = self._parse_local_decls()
        body = self.parse_block()
        return ast.Procedure(name=name, params=params, locals=locals_, body=body, loc=loc)

    def parse_function(self) -> ast.Function:
        loc = self.current.location
        self._expect_keyword("function")
        name = self._expect_ident().text
        params = self._parse_param_list()
        self._expect_symbol(":")
        return_type = self._parse_type()
        self._accept_symbol(";")
        locals_ = self._parse_local_decls()
        body = self.parse_block()
        self._expect_keyword("return")
        self._expect_symbol("(")
        return_var = self._expect_ident().text
        self._expect_symbol(")")
        return ast.Function(
            name=name,
            params=params,
            locals=locals_,
            body=body,
            return_type=return_type,
            return_var=return_var,
            loc=loc,
        )

    def _parse_type(self) -> ast.SilType:
        if self._accept_keyword("int"):
            return ast.SilType.INT
        if self._accept_keyword("handle"):
            return ast.SilType.HANDLE
        raise self._error("expected a type ('int' or 'handle')")

    def _parse_decl_group(self) -> List[ast.VarDecl]:
        names: List[Token] = [self._expect_ident()]
        while self._accept_symbol(","):
            names.append(self._expect_ident())
        self._expect_symbol(":")
        decl_type = self._parse_type()
        return [ast.VarDecl(name=t.text, type=decl_type, loc=t.location) for t in names]

    def _parse_param_list(self) -> List[ast.VarDecl]:
        self._expect_symbol("(")
        params: List[ast.VarDecl] = []
        if not self.current.is_symbol(")"):
            params.extend(self._parse_decl_group())
            while self._accept_symbol(";"):
                params.extend(self._parse_decl_group())
        self._expect_symbol(")")
        return params

    def _parse_local_decls(self) -> List[ast.VarDecl]:
        locals_: List[ast.VarDecl] = []
        while self.current.kind is TokenKind.IDENT:
            locals_.extend(self._parse_decl_group())
            self._accept_symbol(";")
        return locals_

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        loc = self.current.location
        self._expect_keyword("begin")
        stmts: List[ast.Stmt] = []
        while not self.current.is_keyword("end"):
            if self.current.kind is TokenKind.EOF:
                raise self._error("unexpected end of input inside block")
            stmts.append(self.parse_statement())
            if not self._accept_symbol(";"):
                break
        self._expect_keyword("end")
        return ast.Block(stmts=stmts, loc=loc)

    def parse_statement(self) -> ast.Stmt:
        """Parse a statement, combining ``||``-separated branches."""
        first = self.parse_simple_statement()
        if not self.current.is_symbol("||"):
            return first
        branches = [first]
        while self._accept_symbol("||"):
            branches.append(self.parse_simple_statement())
        return ast.ParallelStmt(branches=branches, loc=first.loc)

    def parse_simple_statement(self) -> ast.Stmt:
        token = self.current
        if token.is_keyword("begin"):
            return self.parse_block()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("skip"):
            self._advance()
            return ast.SkipStmt(loc=token.location)
        if token.kind is TokenKind.IDENT:
            return self._parse_call_or_assignment()
        raise self._error("expected a statement")

    def _parse_if(self) -> ast.IfStmt:
        loc = self.current.location
        self._expect_keyword("if")
        cond = self.parse_expression()
        self._expect_keyword("then")
        then_branch = self.parse_statement()
        else_branch: Optional[ast.Stmt] = None
        if self._accept_keyword("else"):
            else_branch = self.parse_statement()
        return ast.IfStmt(cond=cond, then_branch=then_branch, else_branch=else_branch, loc=loc)

    def _parse_while(self) -> ast.WhileStmt:
        loc = self.current.location
        self._expect_keyword("while")
        cond = self.parse_expression()
        self._expect_keyword("do")
        body = self.parse_statement()
        return ast.WhileStmt(cond=cond, body=body, loc=loc)

    def _parse_call_or_assignment(self) -> ast.Stmt:
        name_token = self._expect_ident()
        loc = name_token.location

        # Procedure call:  ident ( args )
        if self.current.is_symbol("("):
            args = self._parse_arguments()
            return ast.ProcCall(name=name_token.text, args=args, loc=loc)

        # Assignment:  ident {.field} := expr
        lhs: ast.Expr = ast.Name(name_token.text, loc=loc)
        while self._accept_symbol("."):
            lhs = ast.FieldAccess(lhs, self._parse_field_name(), loc=loc)
        self._expect_symbol(":=")
        rhs = self.parse_expression()
        return ast.Assign(lhs=lhs, rhs=rhs, loc=loc)

    def _parse_field_name(self) -> ast.Field:
        token = self.current
        if token.kind is TokenKind.IDENT and token.text in _FIELD_NAMES:
            self._advance()
            return _FIELD_NAMES[token.text]
        raise self._error("expected a field name ('left', 'right' or 'value')")

    def _parse_arguments(self) -> List[ast.Expr]:
        self._expect_symbol("(")
        args: List[ast.Expr] = []
        if not self.current.is_symbol(")"):
            args.append(self.parse_expression())
            while self._accept_symbol(","):
                args.append(self.parse_expression())
        self._expect_symbol(")")
        return args

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        expr = self._parse_and()
        while self.current.is_keyword("or"):
            loc = self._advance().location
            right = self._parse_and()
            expr = ast.BinOp("or", expr, right, loc=loc)
        return expr

    def _parse_and(self) -> ast.Expr:
        expr = self._parse_not()
        while self.current.is_keyword("and"):
            loc = self._advance().location
            right = self._parse_not()
            expr = ast.BinOp("and", expr, right, loc=loc)
        return expr

    def _parse_not(self) -> ast.Expr:
        if self.current.is_keyword("not"):
            loc = self._advance().location
            return ast.UnOp("not", self._parse_not(), loc=loc)
        return self._parse_relational()

    def _parse_relational(self) -> ast.Expr:
        expr = self._parse_additive()
        for op in _REL_OPS:
            if self.current.is_symbol(op):
                loc = self._advance().location
                right = self._parse_additive()
                return ast.BinOp(op, expr, right, loc=loc)
        return expr

    def _parse_additive(self) -> ast.Expr:
        expr = self._parse_multiplicative()
        while any(self.current.is_symbol(op) for op in _ADD_OPS):
            op = self._advance()
            right = self._parse_multiplicative()
            expr = ast.BinOp(op.text, expr, right, loc=op.location)
        return expr

    def _parse_multiplicative(self) -> ast.Expr:
        expr = self._parse_unary()
        while any(self.current.is_symbol(op) for op in _MUL_OPS) or any(
            self.current.is_keyword(kw) for kw in _MUL_KEYWORDS
        ):
            op = self._advance()
            right = self._parse_unary()
            expr = ast.BinOp(op.text, expr, right, loc=op.location)
        return expr

    def _parse_unary(self) -> ast.Expr:
        if self.current.is_symbol("-"):
            loc = self._advance().location
            operand = self._parse_unary()
            if isinstance(operand, ast.IntLit):
                return ast.IntLit(-operand.value, loc=loc)
            return ast.UnOp("-", operand, loc=loc)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self._accept_symbol("."):
            field_name = self._parse_field_name()
            expr = ast.FieldAccess(expr, field_name, loc=expr.loc)
        return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind is TokenKind.INT:
            self._advance()
            return ast.IntLit(int(token.text), loc=token.location)
        if token.is_keyword("nil"):
            self._advance()
            return ast.NilLit(loc=token.location)
        if token.is_keyword("new"):
            self._advance()
            self._expect_symbol("(")
            self._expect_symbol(")")
            return ast.NewExpr(loc=token.location)
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self.current.is_symbol("("):
                args = self._parse_arguments()
                return ast.CallExpr(token.text, args, loc=token.location)
            return ast.Name(token.text, loc=token.location)
        if token.is_symbol("("):
            self._advance()
            expr = self.parse_expression()
            self._expect_symbol(")")
            return expr
        raise self._error("expected an expression")


def parse_program(source: str) -> ast.Program:
    """Parse SIL source text into a (surface) :class:`~repro.sil.ast.Program`."""
    parser = Parser(tokenize(source))
    program = parser.parse_program()
    if parser.current.kind is not TokenKind.EOF:
        raise parser._error("unexpected trailing input")
    return program


def parse_statement(source: str) -> ast.Stmt:
    """Parse a single SIL statement (handy for tests and examples)."""
    parser = Parser(tokenize(source))
    stmt = parser.parse_statement()
    parser._accept_symbol(";")
    if parser.current.kind is not TokenKind.EOF:
        raise parser._error("unexpected trailing input after statement")
    return stmt


def parse_expression(source: str) -> ast.Expr:
    """Parse a single SIL expression."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expression()
    if parser.current.kind is not TokenKind.EOF:
        raise parser._error("unexpected trailing input after expression")
    return expr
