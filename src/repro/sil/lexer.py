"""Lexer for SIL source text.

The concrete syntax follows the paper's examples (Pascal-flavoured):
``{ ... }`` braces delimit comments, keywords are lower-case, ``:=`` is the
assignment symbol and ``||`` separates the branches of a parallel statement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

from .errors import LexError, SourceLocation


class TokenKind(enum.Enum):
    IDENT = "identifier"
    INT = "integer"
    KEYWORD = "keyword"
    SYMBOL = "symbol"
    EOF = "end of input"


KEYWORDS = frozenset(
    {
        "program",
        "procedure",
        "function",
        "begin",
        "end",
        "if",
        "then",
        "else",
        "while",
        "do",
        "return",
        "nil",
        "new",
        "int",
        "handle",
        "and",
        "or",
        "not",
        "div",
        "mod",
        "skip",
    }
)

#: Multi-character symbols must be listed before their prefixes.
SYMBOLS = (
    ":=",
    "||",
    "<=",
    ">=",
    "<>",
    "!=",
    "(",
    ")",
    ",",
    ";",
    ":",
    ".",
    "+",
    "-",
    "*",
    "=",
    "<",
    ">",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: TokenKind
    text: str
    location: SourceLocation

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def is_symbol(self, symbol: str) -> bool:
        return self.kind is TokenKind.SYMBOL and self.text == symbol

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.kind is TokenKind.EOF:
            return "<eof>"
        return self.text


class Lexer:
    """Converts SIL source text into a list of :class:`Token`."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- low-level helpers -------------------------------------------------

    def _location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "{":
                start = self._location()
                self._advance()
                while self.pos < len(self.source) and self._peek() != "}":
                    self._advance()
                if self.pos >= len(self.source):
                    raise LexError("unterminated comment", start)
                self._advance()  # consume '}'
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    # -- tokenization ------------------------------------------------------

    def tokens(self) -> List[Token]:
        """Tokenize the entire source, ending with a single EOF token."""
        result: List[Token] = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.kind is TokenKind.EOF:
                return result

    def next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        loc = self._location()
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", loc)

        ch = self._peek()

        if ch.isalpha() or ch == "_":
            start = self.pos
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            text = self.source[start : self.pos]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            return Token(kind, text, loc)

        if ch.isdigit():
            start = self.pos
            while self._peek().isdigit():
                self._advance()
            return Token(TokenKind.INT, self.source[start : self.pos], loc)

        for symbol in SYMBOLS:
            if self.source.startswith(symbol, self.pos):
                self._advance(len(symbol))
                text = "<>" if symbol == "!=" else symbol
                return Token(TokenKind.SYMBOL, text, loc)

        raise LexError(f"unexpected character {ch!r}", loc)


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` into a list of tokens (ending with EOF)."""
    return Lexer(source).tokens()
