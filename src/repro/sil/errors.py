"""Error types used across the SIL front end.

Every diagnostic produced while lexing, parsing, type checking or
normalizing a SIL program is an instance of (a subclass of)
:class:`SilError`.  Errors carry an optional source location so that test
and example code can assert on *where* a problem was reported, not just
that one was reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SourceLocation:
    """A position in a SIL source text (1-based line and column)."""

    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.line}:{self.column}"


class SilError(Exception):
    """Base class for all SIL front-end errors."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None):
        self.message = message
        self.location = location
        if location is not None:
            super().__init__(f"{location}: {message}")
        else:
            super().__init__(message)


class LexError(SilError):
    """Raised when the lexer encounters an unrecognised character."""


class ParseError(SilError):
    """Raised when the parser encounters a malformed construct."""


class TypeCheckError(SilError):
    """Raised when a SIL program violates the (two-type) type system."""


class NormalizationError(SilError):
    """Raised when a program cannot be lowered to basic handle statements."""


class SilRuntimeError(Exception):
    """Raised by the interpreter for dynamic errors (nil dereference, ...)."""

    def __init__(self, message: str):
        self.message = message
        super().__init__(message)


class StructureViolation(SilRuntimeError):
    """Raised/recorded when a program destroys the declared TREE/DAG shape."""
