"""Type checker for SIL programs.

SIL has only two declared types (``int`` and ``handle``); expressions may
additionally have the internal type *bool* (the result of comparisons and
logical operators), which may only be used as the condition of ``if`` and
``while`` statements.

The checker validates both surface programs (with arbitrary ``Assign``
nodes) and normalized core programs, and produces a :class:`TypeInfo`
object recording the declared type of every variable in every procedure —
later phases (normalization, analysis, interpretation) use it to
distinguish handle variables from integer variables without re-deriving
scopes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from . import ast
from .errors import TypeCheckError


class ExprType(enum.Enum):
    """The type of an expression: the two SIL types plus internal bool."""

    INT = "int"
    HANDLE = "handle"
    BOOL = "bool"

    @staticmethod
    def of(sil_type: ast.SilType) -> "ExprType":
        return ExprType.INT if sil_type is ast.SilType.INT else ExprType.HANDLE


@dataclass
class ProcedureTypes:
    """Types of every variable visible inside one procedure."""

    name: str
    variables: Dict[str, ast.SilType] = field(default_factory=dict)

    def type_of(self, name: str) -> ast.SilType:
        try:
            return self.variables[name]
        except KeyError:
            raise TypeCheckError(f"variable {name!r} is not declared in {self.name!r}") from None

    def is_handle(self, name: str) -> bool:
        return self.variables.get(name) is ast.SilType.HANDLE

    def is_int(self, name: str) -> bool:
        return self.variables.get(name) is ast.SilType.INT

    def declared(self, name: str) -> bool:
        return name in self.variables

    def handle_variables(self) -> List[str]:
        return [n for n, t in self.variables.items() if t is ast.SilType.HANDLE]

    def int_variables(self) -> List[str]:
        return [n for n, t in self.variables.items() if t is ast.SilType.INT]


@dataclass
class TypeInfo:
    """Result of type checking a whole program."""

    program: ast.Program
    procedures: Dict[str, ProcedureTypes] = field(default_factory=dict)

    def for_procedure(self, name: str) -> ProcedureTypes:
        try:
            return self.procedures[name]
        except KeyError:
            raise TypeCheckError(f"no procedure or function named {name!r}") from None


class TypeChecker:
    """Checks a SIL program and produces :class:`TypeInfo`."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.info = TypeInfo(program=program)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def check(self) -> TypeInfo:
        self._check_callable_names()
        for proc in self.program.all_callables:
            self._check_procedure(proc)
        self._check_main()
        return self.info

    def _check_main(self) -> None:
        try:
            main = self.program.procedure("main")
        except KeyError:
            raise TypeCheckError("program has no procedure 'main'") from None
        if main.params:
            raise TypeCheckError("procedure 'main' must be parameterless")

    def _check_callable_names(self) -> None:
        seen: Dict[str, ast.Procedure] = {}
        for proc in self.program.all_callables:
            if proc.name in seen:
                raise TypeCheckError(f"duplicate procedure/function name {proc.name!r}")
            seen[proc.name] = proc

    # ------------------------------------------------------------------
    # Declarations and scopes
    # ------------------------------------------------------------------

    def _check_procedure(self, proc: ast.Procedure) -> None:
        scope = ProcedureTypes(name=proc.name)
        for decl in proc.params + proc.locals:
            if decl.name in scope.variables:
                raise TypeCheckError(
                    f"variable {decl.name!r} declared more than once in {proc.name!r}", decl.loc
                )
            if self.program.has_callable(decl.name):
                raise TypeCheckError(
                    f"variable {decl.name!r} in {proc.name!r} shadows a procedure name", decl.loc
                )
            scope.variables[decl.name] = decl.type
        self.info.procedures[proc.name] = scope

        if isinstance(proc, ast.Function):
            if not scope.declared(proc.return_var):
                raise TypeCheckError(
                    f"function {proc.name!r} returns undeclared variable {proc.return_var!r}",
                    proc.loc,
                )
            declared = scope.type_of(proc.return_var)
            if declared is not proc.return_type:
                raise TypeCheckError(
                    f"function {proc.name!r} declares return type {proc.return_type} "
                    f"but returns {proc.return_var!r} of type {declared}",
                    proc.loc,
                )

        self._check_stmt(proc.body, proc, scope)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt, proc: ast.Procedure, scope: ProcedureTypes) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                self._check_stmt(inner, proc, scope)
        elif isinstance(stmt, ast.ParallelStmt):
            for branch in stmt.branches:
                self._check_stmt(branch, proc, scope)
        elif isinstance(stmt, ast.IfStmt):
            self._require(stmt.cond, ExprType.BOOL, proc, scope, "if condition")
            self._check_stmt(stmt.then_branch, proc, scope)
            if stmt.else_branch is not None:
                self._check_stmt(stmt.else_branch, proc, scope)
        elif isinstance(stmt, ast.WhileStmt):
            self._require(stmt.cond, ExprType.BOOL, proc, scope, "while condition")
            self._check_stmt(stmt.body, proc, scope)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt, proc, scope)
        elif isinstance(stmt, ast.ProcCall):
            self._check_call(stmt.name, stmt.args, proc, scope, expect_function=False, loc=stmt.loc)
        elif isinstance(stmt, ast.FuncAssign):
            func = self._check_call(
                stmt.name, stmt.args, proc, scope, expect_function=True, loc=stmt.loc
            )
            assert isinstance(func, ast.Function)
            target_type = scope.type_of(stmt.target)
            if ExprType.of(target_type) is not ExprType.of(func.return_type):
                raise TypeCheckError(
                    f"cannot assign result of {stmt.name!r} ({func.return_type}) to "
                    f"{stmt.target!r} ({target_type})",
                    stmt.loc,
                )
        elif isinstance(stmt, ast.SkipStmt):
            pass
        elif isinstance(stmt, ast.BasicStmt):
            self._check_basic(stmt, proc, scope)
        else:  # pragma: no cover - defensive
            raise TypeCheckError(f"unknown statement node {type(stmt).__name__}", stmt.loc)

    def _check_basic(self, stmt: ast.BasicStmt, proc: ast.Procedure, scope: ProcedureTypes) -> None:
        if isinstance(stmt, (ast.AssignNil, ast.AssignNew)):
            self._require_var(stmt.target, ast.SilType.HANDLE, scope, stmt)
        elif isinstance(stmt, ast.CopyHandle):
            self._require_var(stmt.target, ast.SilType.HANDLE, scope, stmt)
            self._require_var(stmt.source, ast.SilType.HANDLE, scope, stmt)
        elif isinstance(stmt, ast.LoadField):
            if not stmt.field_name.is_link:
                raise TypeCheckError("LoadField must access 'left' or 'right'", stmt.loc)
            self._require_var(stmt.target, ast.SilType.HANDLE, scope, stmt)
            self._require_var(stmt.source, ast.SilType.HANDLE, scope, stmt)
        elif isinstance(stmt, ast.StoreField):
            if not stmt.field_name.is_link:
                raise TypeCheckError("StoreField must access 'left' or 'right'", stmt.loc)
            self._require_var(stmt.target, ast.SilType.HANDLE, scope, stmt)
            if stmt.source is not None:
                self._require_var(stmt.source, ast.SilType.HANDLE, scope, stmt)
        elif isinstance(stmt, ast.LoadValue):
            self._require_var(stmt.target, ast.SilType.INT, scope, stmt)
            self._require_var(stmt.source, ast.SilType.HANDLE, scope, stmt)
        elif isinstance(stmt, ast.StoreValue):
            self._require_var(stmt.target, ast.SilType.HANDLE, scope, stmt)
            self._require(stmt.expr, ExprType.INT, proc, scope, "value expression")
        elif isinstance(stmt, ast.ScalarAssign):
            self._require_var(stmt.target, ast.SilType.INT, scope, stmt)
            self._require(stmt.expr, ExprType.INT, proc, scope, "scalar expression")
        else:  # pragma: no cover - defensive
            raise TypeCheckError(f"unknown basic statement {type(stmt).__name__}", stmt.loc)

    def _require_var(
        self, name: str, expected: ast.SilType, scope: ProcedureTypes, stmt: ast.Stmt
    ) -> None:
        if not scope.declared(name):
            raise TypeCheckError(f"variable {name!r} is not declared in {scope.name!r}", stmt.loc)
        actual = scope.type_of(name)
        if actual is not expected:
            raise TypeCheckError(
                f"variable {name!r} has type {actual}, expected {expected}", stmt.loc
            )

    def _check_assign(self, stmt: ast.Assign, proc: ast.Procedure, scope: ProcedureTypes) -> None:
        lhs_type = self._check_lvalue(stmt.lhs, proc, scope)
        rhs_type = self._expr_type(stmt.rhs, proc, scope)
        if rhs_type is ExprType.BOOL:
            raise TypeCheckError("cannot assign a boolean expression", stmt.loc)
        if lhs_type is not rhs_type:
            raise TypeCheckError(
                f"type mismatch in assignment: left side is {lhs_type.value}, "
                f"right side is {rhs_type.value}",
                stmt.loc,
            )

    def _check_lvalue(self, expr: ast.Expr, proc: ast.Procedure, scope: ProcedureTypes) -> ExprType:
        if isinstance(expr, ast.Name):
            return ExprType.of(scope.type_of(expr.ident))
        if isinstance(expr, ast.FieldAccess):
            base_type = self._check_lvalue(expr.base, proc, scope)
            if base_type is not ExprType.HANDLE:
                raise TypeCheckError("field access requires a handle", expr.loc)
            return ExprType.INT if expr.field_name is ast.Field.VALUE else ExprType.HANDLE
        raise TypeCheckError("left side of assignment must be a variable or field access", expr.loc)

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _check_call(
        self,
        name: str,
        args: List[ast.Expr],
        proc: ast.Procedure,
        scope: ProcedureTypes,
        expect_function: bool,
        loc,
    ) -> ast.Procedure:
        try:
            callee = self.program.callable(name)
        except KeyError:
            raise TypeCheckError(f"call to undefined procedure/function {name!r}", loc) from None
        if expect_function and not isinstance(callee, ast.Function):
            raise TypeCheckError(f"{name!r} is a procedure, not a function", loc)
        if not expect_function and isinstance(callee, ast.Function):
            raise TypeCheckError(
                f"{name!r} is a function; its result must be assigned to a variable", loc
            )
        if len(args) != len(callee.params):
            raise TypeCheckError(
                f"call to {name!r} has {len(args)} argument(s); expected {len(callee.params)}", loc
            )
        for arg, param in zip(args, callee.params):
            arg_type = self._expr_type(arg, proc, scope)
            if arg_type is ExprType.BOOL:
                raise TypeCheckError(f"cannot pass a boolean expression to {name!r}", loc)
            if arg_type is not ExprType.of(param.type):
                raise TypeCheckError(
                    f"argument {param.name!r} of {name!r} expects {param.type}, got {arg_type.value}",
                    loc,
                )
        return callee

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _require(
        self,
        expr: ast.Expr,
        expected: ExprType,
        proc: ast.Procedure,
        scope: ProcedureTypes,
        what: str,
    ) -> None:
        actual = self._expr_type(expr, proc, scope)
        if actual is not expected:
            raise TypeCheckError(f"{what} must be {expected.value}, got {actual.value}", expr.loc)

    def _expr_type(self, expr: ast.Expr, proc: ast.Procedure, scope: ProcedureTypes) -> ExprType:
        if isinstance(expr, ast.IntLit):
            return ExprType.INT
        if isinstance(expr, (ast.NilLit, ast.NewExpr)):
            return ExprType.HANDLE
        if isinstance(expr, ast.Name):
            return ExprType.of(scope.type_of(expr.ident))
        if isinstance(expr, ast.FieldAccess):
            base_type = self._expr_type(expr.base, proc, scope)
            if base_type is not ExprType.HANDLE:
                raise TypeCheckError("field access requires a handle", expr.loc)
            return ExprType.INT if expr.field_name is ast.Field.VALUE else ExprType.HANDLE
        if isinstance(expr, ast.UnOp):
            operand = self._expr_type(expr.operand, proc, scope)
            if expr.op == "-":
                if operand is not ExprType.INT:
                    raise TypeCheckError("unary '-' requires an int operand", expr.loc)
                return ExprType.INT
            if expr.op == "not":
                if operand is not ExprType.BOOL:
                    raise TypeCheckError("'not' requires a boolean operand", expr.loc)
                return ExprType.BOOL
            raise TypeCheckError(f"unknown unary operator {expr.op!r}", expr.loc)
        if isinstance(expr, ast.BinOp):
            return self._binop_type(expr, proc, scope)
        if isinstance(expr, ast.CallExpr):
            callee = self._check_call(
                expr.name, expr.args, proc, scope, expect_function=True, loc=expr.loc
            )
            assert isinstance(callee, ast.Function)
            return ExprType.of(callee.return_type)
        raise TypeCheckError(f"unknown expression node {type(expr).__name__}", expr.loc)

    def _binop_type(self, expr: ast.BinOp, proc: ast.Procedure, scope: ProcedureTypes) -> ExprType:
        left = self._expr_type(expr.left, proc, scope)
        right = self._expr_type(expr.right, proc, scope)
        op = expr.op
        if op in ast.ARITHMETIC_OPS:
            if left is not ExprType.INT or right is not ExprType.INT:
                raise TypeCheckError(f"operator {op!r} requires int operands", expr.loc)
            return ExprType.INT
        if op in ast.LOGICAL_OPS:
            if left is not ExprType.BOOL or right is not ExprType.BOOL:
                raise TypeCheckError(f"operator {op!r} requires boolean operands", expr.loc)
            return ExprType.BOOL
        if op in ast.COMPARISON_OPS:
            if left is ExprType.HANDLE or right is ExprType.HANDLE:
                if op not in ("=", "<>"):
                    raise TypeCheckError(
                        f"handles may only be compared with '=' or '<>', not {op!r}", expr.loc
                    )
                if left is not ExprType.HANDLE or right is not ExprType.HANDLE:
                    raise TypeCheckError("cannot compare a handle with an int", expr.loc)
                return ExprType.BOOL
            if left is not ExprType.INT or right is not ExprType.INT:
                raise TypeCheckError(f"operator {op!r} requires int or handle operands", expr.loc)
            return ExprType.BOOL
        raise TypeCheckError(f"unknown binary operator {op!r}", expr.loc)


def check_program(program: ast.Program) -> TypeInfo:
    """Type check ``program`` and return the resulting :class:`TypeInfo`."""
    return TypeChecker(program).check()
