"""Abstract syntax trees for SIL, the Structured Imperative Language.

SIL is the small imperative language of Hendren & Nicolau (1989).  A program
consists of a parameterless procedure ``main`` plus auxiliary procedures and
functions, all statically scoped with call-by-value semantics.  Two types
are supported: ``int`` and ``handle`` (the name of a binary-tree node).

The AST has two "levels":

* **Surface statements** (:class:`Assign`) are what the parser produces for
  arbitrary assignments such as ``a.left.right := b.right``.
* **Basic handle statements** (:class:`AssignNil`, :class:`AssignNew`,
  :class:`CopyHandle`, :class:`LoadField`, :class:`StoreField`,
  :class:`LoadValue`, :class:`StoreValue`, :class:`ScalarAssign`) are the
  core forms from Section 3.2 of the paper.  The normalizer
  (:mod:`repro.sil.normalize`) lowers every surface assignment into a
  sequence of basic statements, introducing temporaries as required; the
  path-matrix analysis, the interference analysis and the interpreter all
  operate on normalized programs.

Parallel SIL adds a single construct, :class:`ParallelStmt`, written
``s1 || s2 || ... || sn`` — the output form of the parallelizer and also a
legal input form (so hand-parallelized programs can be *checked*).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from .errors import SourceLocation

# ---------------------------------------------------------------------------
# Types and fields
# ---------------------------------------------------------------------------


class SilType(enum.Enum):
    """The two SIL types."""

    INT = "int"
    HANDLE = "handle"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Field(enum.Enum):
    """Fields of a binary-tree node: ``left``, ``right`` (handles), ``value`` (int)."""

    LEFT = "left"
    RIGHT = "right"
    VALUE = "value"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_link(self) -> bool:
        """True for the pointer-valued fields ``left`` and ``right``."""
        return self in (Field.LEFT, Field.RIGHT)


LINK_FIELDS: Tuple[Field, Field] = (Field.LEFT, Field.RIGHT)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Node:
    """Base class for all AST nodes.  Carries an optional source location."""

    loc: Optional[SourceLocation] = field(
        default=None, repr=False, compare=False, kw_only=True
    )


@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLit(Expr):
    """An integer literal."""

    value: int = 0


@dataclass
class NilLit(Expr):
    """The ``nil`` handle literal."""


@dataclass
class NewExpr(Expr):
    """A call to the built-in allocator ``new()``."""


@dataclass
class Name(Expr):
    """A reference to a variable (integer or handle)."""

    ident: str = ""


@dataclass
class FieldAccess(Expr):
    """``base.field`` where ``field`` is ``left``, ``right`` or ``value``."""

    base: Expr = field(default_factory=Name)
    field_name: Field = Field.LEFT


#: Binary operators.  Comparison operators yield booleans (represented as
#: SIL ints 0/1); arithmetic operators work on ints; ``and``/``or`` on bools.
BINARY_OPS = (
    "+",
    "-",
    "*",
    "div",
    "mod",
    "=",
    "<>",
    "<",
    "<=",
    ">",
    ">=",
    "and",
    "or",
)

COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")
ARITHMETIC_OPS = ("+", "-", "*", "div", "mod")
LOGICAL_OPS = ("and", "or")

UNARY_OPS = ("-", "not")


@dataclass
class BinOp(Expr):
    """A binary operation ``left op right``."""

    op: str = "+"
    left: Expr = field(default_factory=IntLit)
    right: Expr = field(default_factory=IntLit)


@dataclass
class UnOp(Expr):
    """A unary operation ``op operand`` (``-`` or ``not``)."""

    op: str = "-"
    operand: Expr = field(default_factory=IntLit)


@dataclass
class CallExpr(Expr):
    """A function call used as the right-hand side of an assignment."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class Block(Stmt):
    """``begin s1; s2; ... end``."""

    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class Assign(Stmt):
    """Surface-level assignment ``lhs := rhs``.

    ``lhs`` is a :class:`Name` or a chain of :class:`FieldAccess` nodes
    rooted at a :class:`Name`.  Lowered to basic statements by the
    normalizer.
    """

    lhs: Expr = field(default_factory=Name)
    rhs: Expr = field(default_factory=IntLit)


@dataclass
class IfStmt(Stmt):
    """``if cond then s [else s]``."""

    cond: Expr = field(default_factory=IntLit)
    then_branch: Stmt = field(default_factory=Block)
    else_branch: Optional[Stmt] = None


@dataclass
class WhileStmt(Stmt):
    """``while cond do s``."""

    cond: Expr = field(default_factory=IntLit)
    body: Stmt = field(default_factory=Block)


@dataclass
class ProcCall(Stmt):
    """A procedure call statement ``p(a1, ..., an)``."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class FuncAssign(Stmt):
    """``x := f(a1, ..., an)`` — assignment of a function-call result."""

    target: str = ""
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class ParallelStmt(Stmt):
    """``s1 || s2 || ... || sn`` — all branches execute in parallel."""

    branches: List[Stmt] = field(default_factory=list)


@dataclass
class SkipStmt(Stmt):
    """A no-op statement (used by transformations and tests)."""


# ---- Basic handle statements (core forms of Section 3.2) ------------------


@dataclass
class BasicStmt(Stmt):
    """Marker base class for basic (core) statements."""


@dataclass
class AssignNil(BasicStmt):
    """``a := nil``."""

    target: str = ""


@dataclass
class AssignNew(BasicStmt):
    """``a := new()``."""

    target: str = ""


@dataclass
class CopyHandle(BasicStmt):
    """``a := b`` (both handles)."""

    target: str = ""
    source: str = ""


@dataclass
class LoadField(BasicStmt):
    """``a := b.left`` or ``a := b.right``."""

    target: str = ""
    source: str = ""
    field_name: Field = Field.LEFT


@dataclass
class StoreField(BasicStmt):
    """``a.left := b``, ``a.right := b`` or ``a.left := nil`` (source None)."""

    target: str = ""
    field_name: Field = Field.LEFT
    source: Optional[str] = None


@dataclass
class LoadValue(BasicStmt):
    """``x := a.value``."""

    target: str = ""
    source: str = ""


@dataclass
class StoreValue(BasicStmt):
    """``a.value := e`` where ``e`` is a pure integer expression."""

    target: str = ""
    expr: Expr = field(default_factory=IntLit)


@dataclass
class ScalarAssign(BasicStmt):
    """``x := e`` where ``x`` is an int variable and ``e`` a pure int expression."""

    target: str = ""
    expr: Expr = field(default_factory=IntLit)


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class VarDecl(Node):
    """A variable declaration (parameter or local)."""

    name: str = ""
    type: SilType = SilType.INT


@dataclass
class Procedure(Node):
    """A SIL procedure."""

    name: str = ""
    params: List[VarDecl] = field(default_factory=list)
    locals: List[VarDecl] = field(default_factory=list)
    body: Block = field(default_factory=Block)

    @property
    def param_names(self) -> List[str]:
        return [p.name for p in self.params]

    @property
    def handle_params(self) -> List[str]:
        return [p.name for p in self.params if p.type is SilType.HANDLE]

    @property
    def local_names(self) -> List[str]:
        return [v.name for v in self.locals]

    def declared_type(self, name: str) -> Optional[SilType]:
        """The declared type of ``name`` in this procedure, if any."""
        for decl in self.params + self.locals:
            if decl.name == name:
                return decl.type
        return None


@dataclass
class Function(Procedure):
    """A SIL function: a procedure with a return type and a return variable."""

    return_type: SilType = SilType.INT
    return_var: str = ""


@dataclass
class Program(Node):
    """A whole SIL program: ``main`` plus auxiliary procedures and functions."""

    name: str = "program"
    procedures: List[Procedure] = field(default_factory=list)
    functions: List[Function] = field(default_factory=list)

    def procedure(self, name: str) -> Procedure:
        """Look up a procedure (not function) by name.  Raises KeyError."""
        for proc in self.procedures:
            if proc.name == name:
                return proc
        raise KeyError(f"no procedure named {name!r}")

    def function(self, name: str) -> Function:
        """Look up a function by name.  Raises KeyError."""
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")

    def callable(self, name: str) -> Procedure:
        """Look up a procedure *or* function by name.  Raises KeyError."""
        for proc in self.procedures:
            if proc.name == name:
                return proc
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no procedure or function named {name!r}")

    def has_callable(self, name: str) -> bool:
        try:
            self.callable(name)
            return True
        except KeyError:
            return False

    @property
    def main(self) -> Procedure:
        """The entry procedure ``main``."""
        return self.procedure("main")

    @property
    def all_callables(self) -> List[Procedure]:
        return list(self.procedures) + list(self.functions)


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def expr_children(expr: Expr) -> Iterator[Expr]:
    """Yield the immediate sub-expressions of ``expr``."""
    if isinstance(expr, FieldAccess):
        yield expr.base
    elif isinstance(expr, BinOp):
        yield expr.left
        yield expr.right
    elif isinstance(expr, UnOp):
        yield expr.operand
    elif isinstance(expr, CallExpr):
        yield from expr.args


def walk_expr(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression (pre-order)."""
    yield expr
    for child in expr_children(expr):
        yield from walk_expr(child)


def stmt_children(stmt: Stmt) -> Iterator[Stmt]:
    """Yield the immediate sub-statements of ``stmt``."""
    if isinstance(stmt, Block):
        yield from stmt.stmts
    elif isinstance(stmt, IfStmt):
        yield stmt.then_branch
        if stmt.else_branch is not None:
            yield stmt.else_branch
    elif isinstance(stmt, WhileStmt):
        yield stmt.body
    elif isinstance(stmt, ParallelStmt):
        yield from stmt.branches


def walk_stmt(stmt: Stmt) -> Iterator[Stmt]:
    """Yield ``stmt`` and every nested statement (pre-order)."""
    yield stmt
    for child in stmt_children(stmt):
        yield from walk_stmt(child)


def walk_program_stmts(program: Program) -> Iterator[Tuple[Procedure, Stmt]]:
    """Yield ``(procedure, statement)`` pairs for every statement in a program."""
    for proc in program.all_callables:
        for stmt in walk_stmt(proc.body):
            yield proc, stmt


def stmt_expressions(stmt: Stmt) -> Iterator[Expr]:
    """Yield the expressions directly attached to ``stmt`` (not sub-statements)."""
    if isinstance(stmt, Assign):
        yield stmt.lhs
        yield stmt.rhs
    elif isinstance(stmt, (IfStmt, WhileStmt)):
        yield stmt.cond
    elif isinstance(stmt, ProcCall):
        yield from stmt.args
    elif isinstance(stmt, FuncAssign):
        yield from stmt.args
    elif isinstance(stmt, (StoreValue, ScalarAssign)):
        yield stmt.expr


def names_in_expr(expr: Expr) -> Iterator[str]:
    """Yield every variable name referenced in ``expr``."""
    for sub in walk_expr(expr):
        if isinstance(sub, Name):
            yield sub.ident


def is_basic_handle_stmt(stmt: Stmt) -> bool:
    """True for basic statements that read or write handles/fields.

    These are the statement forms of interest for interference analysis
    (Section 4 of the paper); :class:`ScalarAssign` is a basic statement but
    touches no handle.
    """
    return isinstance(
        stmt,
        (AssignNil, AssignNew, CopyHandle, LoadField, StoreField, LoadValue, StoreValue),
    )


def is_core_stmt(stmt: Stmt) -> bool:
    """True if ``stmt`` is legal in a *normalized* (core) program.

    Core programs contain no surface :class:`Assign` nodes; every assignment
    has been lowered to a basic statement.
    """
    if isinstance(stmt, Assign):
        return False
    return isinstance(
        stmt,
        (
            BasicStmt,
            Block,
            IfStmt,
            WhileStmt,
            ProcCall,
            FuncAssign,
            ParallelStmt,
            SkipStmt,
        ),
    )


def program_is_core(program: Program) -> bool:
    """True if every statement of ``program`` is a core statement."""
    return all(is_core_stmt(stmt) for _, stmt in walk_program_stmts(program))


def count_statements(program: Program) -> int:
    """Total number of statements (all nesting levels) in a program."""
    return sum(1 for _ in walk_program_stmts(program))


def clone_expr(expr: Expr) -> Expr:
    """Deep-copy an expression tree."""
    if isinstance(expr, IntLit):
        return IntLit(loc=expr.loc, value=expr.value)
    if isinstance(expr, NilLit):
        return NilLit(loc=expr.loc)
    if isinstance(expr, NewExpr):
        return NewExpr(loc=expr.loc)
    if isinstance(expr, Name):
        return Name(loc=expr.loc, ident=expr.ident)
    if isinstance(expr, FieldAccess):
        return FieldAccess(loc=expr.loc, base=clone_expr(expr.base), field_name=expr.field_name)
    if isinstance(expr, BinOp):
        return BinOp(loc=expr.loc, op=expr.op, left=clone_expr(expr.left), right=clone_expr(expr.right))
    if isinstance(expr, UnOp):
        return UnOp(loc=expr.loc, op=expr.op, operand=clone_expr(expr.operand))
    if isinstance(expr, CallExpr):
        return CallExpr(loc=expr.loc, name=expr.name, args=[clone_expr(a) for a in expr.args])
    raise TypeError(f"unknown expression node: {expr!r}")


def clone_stmt(stmt: Stmt) -> Stmt:
    """Deep-copy a statement tree."""
    if isinstance(stmt, Block):
        return Block(loc=stmt.loc, stmts=[clone_stmt(s) for s in stmt.stmts])
    if isinstance(stmt, Assign):
        return Assign(loc=stmt.loc, lhs=clone_expr(stmt.lhs), rhs=clone_expr(stmt.rhs))
    if isinstance(stmt, IfStmt):
        return IfStmt(
            loc=stmt.loc,
            cond=clone_expr(stmt.cond),
            then_branch=clone_stmt(stmt.then_branch),
            else_branch=clone_stmt(stmt.else_branch) if stmt.else_branch is not None else None,
        )
    if isinstance(stmt, WhileStmt):
        return WhileStmt(loc=stmt.loc, cond=clone_expr(stmt.cond), body=clone_stmt(stmt.body))
    if isinstance(stmt, ProcCall):
        return ProcCall(loc=stmt.loc, name=stmt.name, args=[clone_expr(a) for a in stmt.args])
    if isinstance(stmt, FuncAssign):
        return FuncAssign(
            loc=stmt.loc, target=stmt.target, name=stmt.name, args=[clone_expr(a) for a in stmt.args]
        )
    if isinstance(stmt, ParallelStmt):
        return ParallelStmt(loc=stmt.loc, branches=[clone_stmt(s) for s in stmt.branches])
    if isinstance(stmt, SkipStmt):
        return SkipStmt(loc=stmt.loc)
    if isinstance(stmt, AssignNil):
        return AssignNil(loc=stmt.loc, target=stmt.target)
    if isinstance(stmt, AssignNew):
        return AssignNew(loc=stmt.loc, target=stmt.target)
    if isinstance(stmt, CopyHandle):
        return CopyHandle(loc=stmt.loc, target=stmt.target, source=stmt.source)
    if isinstance(stmt, LoadField):
        return LoadField(loc=stmt.loc, target=stmt.target, source=stmt.source, field_name=stmt.field_name)
    if isinstance(stmt, StoreField):
        return StoreField(loc=stmt.loc, target=stmt.target, field_name=stmt.field_name, source=stmt.source)
    if isinstance(stmt, LoadValue):
        return LoadValue(loc=stmt.loc, target=stmt.target, source=stmt.source)
    if isinstance(stmt, StoreValue):
        return StoreValue(loc=stmt.loc, target=stmt.target, expr=clone_expr(stmt.expr))
    if isinstance(stmt, ScalarAssign):
        return ScalarAssign(loc=stmt.loc, target=stmt.target, expr=clone_expr(stmt.expr))
    raise TypeError(f"unknown statement node: {stmt!r}")


def clone_procedure(proc: Procedure) -> Procedure:
    """Deep-copy a procedure or function declaration."""
    params = [VarDecl(loc=p.loc, name=p.name, type=p.type) for p in proc.params]
    locals_ = [VarDecl(loc=v.loc, name=v.name, type=v.type) for v in proc.locals]
    body = clone_stmt(proc.body)
    assert isinstance(body, Block)
    if isinstance(proc, Function):
        return Function(
            loc=proc.loc,
            name=proc.name,
            params=params,
            locals=locals_,
            body=body,
            return_type=proc.return_type,
            return_var=proc.return_var,
        )
    return Procedure(loc=proc.loc, name=proc.name, params=params, locals=locals_, body=body)


def clone_program(program: Program) -> Program:
    """Deep-copy an entire program."""
    return Program(
        loc=program.loc,
        name=program.name,
        procedures=[clone_procedure(p) for p in program.procedures],
        functions=[clone_procedure(f) for f in program.functions],  # type: ignore[list-item]
    )
