"""A small programmatic builder API for constructing SIL programs.

Examples and the workload generators construct programs directly as ASTs
rather than via source text; this module provides a compact, readable way
to do so::

    b = ProgramBuilder("swap_children")
    main = b.procedure("main", locals=[("root", HANDLE), ("l", HANDLE), ("r", HANDLE)])
    main.assign("root", new())
    main.assign(("root", "left"), new())
    main.assign(("root", "right"), new())
    main.assign("l", field("root", "left"))
    main.assign("r", field("root", "right"))
    main.assign(("root", "left"), name("r"))
    main.assign(("root", "right"), name("l"))
    program = b.build()

The builder emits *surface* ASTs; run them through
:func:`repro.sil.normalize.normalize_program` (or use :meth:`ProgramBuilder
.build_core`) before analysis/interpretation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from . import ast
from .normalize import normalize_program
from .typecheck import TypeInfo, check_program

#: Convenient aliases for declaring variables.
INT = ast.SilType.INT
HANDLE = ast.SilType.HANDLE

_FIELDS = {"left": ast.Field.LEFT, "right": ast.Field.RIGHT, "value": ast.Field.VALUE}

ExprLike = Union[ast.Expr, int, str]
LValueLike = Union[str, Tuple[str, ...], ast.Expr]


# ---------------------------------------------------------------------------
# Expression helpers
# ---------------------------------------------------------------------------


def to_expr(value: ExprLike) -> ast.Expr:
    """Coerce an int / variable-name / Expr into an :class:`~repro.sil.ast.Expr`."""
    if isinstance(value, ast.Expr):
        return value
    if isinstance(value, bool):  # pragma: no cover - defensive
        raise TypeError("SIL has no boolean literals")
    if isinstance(value, int):
        return ast.IntLit(value)
    if isinstance(value, str):
        return ast.Name(value)
    raise TypeError(f"cannot convert {value!r} to a SIL expression")


def name(ident: str) -> ast.Name:
    """A variable reference."""
    return ast.Name(ident)


def lit(value: int) -> ast.IntLit:
    """An integer literal."""
    return ast.IntLit(value)


def nil() -> ast.NilLit:
    """The ``nil`` literal."""
    return ast.NilLit()


def new() -> ast.NewExpr:
    """A ``new()`` allocation expression."""
    return ast.NewExpr()


def field(base: ExprLike, *fields: str) -> ast.Expr:
    """``field("a", "left", "right")`` builds ``a.left.right``."""
    expr = to_expr(base)
    for field_name in fields:
        expr = ast.FieldAccess(expr, _FIELDS[field_name])
    return expr


def call(func_name: str, *args: ExprLike) -> ast.CallExpr:
    """A function-call expression."""
    return ast.CallExpr(func_name, [to_expr(a) for a in args])


def binop(op: str, left: ExprLike, right: ExprLike) -> ast.BinOp:
    return ast.BinOp(op, to_expr(left), to_expr(right))


def add(left: ExprLike, right: ExprLike) -> ast.BinOp:
    return binop("+", left, right)


def sub(left: ExprLike, right: ExprLike) -> ast.BinOp:
    return binop("-", left, right)


def mul(left: ExprLike, right: ExprLike) -> ast.BinOp:
    return binop("*", left, right)


def eq(left: ExprLike, right: ExprLike) -> ast.BinOp:
    return binop("=", left, right)


def ne(left: ExprLike, right: ExprLike) -> ast.BinOp:
    return binop("<>", left, right)


def lt(left: ExprLike, right: ExprLike) -> ast.BinOp:
    return binop("<", left, right)


def le(left: ExprLike, right: ExprLike) -> ast.BinOp:
    return binop("<=", left, right)


def gt(left: ExprLike, right: ExprLike) -> ast.BinOp:
    return binop(">", left, right)


def ge(left: ExprLike, right: ExprLike) -> ast.BinOp:
    return binop(">=", left, right)


def not_nil(handle_name: str) -> ast.BinOp:
    """The ubiquitous ``h <> nil`` condition."""
    return ast.BinOp("<>", ast.Name(handle_name), ast.NilLit())


def is_nil(handle_name: str) -> ast.BinOp:
    """``h = nil``."""
    return ast.BinOp("=", ast.Name(handle_name), ast.NilLit())


def _to_lvalue(target: LValueLike) -> ast.Expr:
    if isinstance(target, ast.Expr):
        return target
    if isinstance(target, str):
        return ast.Name(target)
    if isinstance(target, tuple):
        base, *fields = target
        return field(base, *fields)
    raise TypeError(f"cannot convert {target!r} to an assignment target")


# ---------------------------------------------------------------------------
# Statement-level builders
# ---------------------------------------------------------------------------


class BlockBuilder:
    """Accumulates statements for a block, procedure body, or branch."""

    def __init__(self) -> None:
        self._stmts: List[ast.Stmt] = []

    # -- statements --------------------------------------------------------

    def assign(self, target: LValueLike, value: ExprLike) -> "BlockBuilder":
        """``target := value``; target may be ``"x"`` or ``("a", "left", ...)``."""
        self._stmts.append(ast.Assign(lhs=_to_lvalue(target), rhs=to_expr(value)))
        return self

    def call(self, proc_name: str, *args: ExprLike) -> "BlockBuilder":
        """A procedure call statement."""
        self._stmts.append(ast.ProcCall(name=proc_name, args=[to_expr(a) for a in args]))
        return self

    def call_assign(self, target: str, func_name: str, *args: ExprLike) -> "BlockBuilder":
        """``target := func(args)``."""
        self._stmts.append(
            ast.FuncAssign(target=target, name=func_name, args=[to_expr(a) for a in args])
        )
        return self

    def skip(self) -> "BlockBuilder":
        self._stmts.append(ast.SkipStmt())
        return self

    def parallel(self, *builders_or_stmts: Union["BlockBuilder", ast.Stmt]) -> "BlockBuilder":
        """Add an explicit parallel statement ``s1 || s2 || ...``."""
        branches: List[ast.Stmt] = []
        for item in builders_or_stmts:
            if isinstance(item, BlockBuilder):
                branches.append(item.as_stmt())
            else:
                branches.append(item)
        self._stmts.append(ast.ParallelStmt(branches=branches))
        return self

    def if_(self, cond: ExprLike) -> "IfBuilder":
        """Start an ``if`` statement; use the returned builder's then/else blocks."""
        return IfBuilder(self, to_expr(cond))

    def while_(self, cond: ExprLike) -> "BlockBuilder":
        """Start a ``while`` loop; returns the builder for the loop body."""
        body = BlockBuilder()
        self._stmts.append(ast.WhileStmt(cond=to_expr(cond), body=_DeferredBlock(body)))
        return body

    def append(self, stmt: ast.Stmt) -> "BlockBuilder":
        """Append an arbitrary pre-built statement."""
        self._stmts.append(stmt)
        return self

    # -- finishing ----------------------------------------------------------

    def as_block(self) -> ast.Block:
        return ast.Block(stmts=[_resolve(s) for s in self._stmts])

    def as_stmt(self) -> ast.Stmt:
        stmts = [_resolve(s) for s in self._stmts]
        if len(stmts) == 1:
            return stmts[0]
        return ast.Block(stmts=stmts)


class _DeferredBlock(ast.Stmt):
    """Placeholder wrapping a :class:`BlockBuilder` until the tree is finalized."""

    def __init__(self, builder: BlockBuilder):
        super().__init__()
        self.builder = builder


def _resolve(stmt: ast.Stmt) -> ast.Stmt:
    """Replace deferred-block placeholders with their built blocks."""
    if isinstance(stmt, _DeferredBlock):
        return stmt.builder.as_stmt()
    if isinstance(stmt, ast.Block):
        return ast.Block(stmts=[_resolve(s) for s in stmt.stmts], loc=stmt.loc)
    if isinstance(stmt, ast.IfStmt):
        return ast.IfStmt(
            cond=stmt.cond,
            then_branch=_resolve(stmt.then_branch),
            else_branch=_resolve(stmt.else_branch) if stmt.else_branch is not None else None,
            loc=stmt.loc,
        )
    if isinstance(stmt, ast.WhileStmt):
        return ast.WhileStmt(cond=stmt.cond, body=_resolve(stmt.body), loc=stmt.loc)
    if isinstance(stmt, ast.ParallelStmt):
        return ast.ParallelStmt(branches=[_resolve(b) for b in stmt.branches], loc=stmt.loc)
    return stmt


class IfBuilder:
    """Builds an ``if``/``else`` statement attached to a parent block."""

    def __init__(self, parent: BlockBuilder, cond: ast.Expr):
        self._cond = cond
        self.then = BlockBuilder()
        self._else: Optional[BlockBuilder] = None
        stmt = ast.IfStmt(cond=cond, then_branch=_DeferredBlock(self.then), else_branch=None)
        self._stmt = stmt
        parent._stmts.append(stmt)

    @property
    def otherwise(self) -> BlockBuilder:
        """The ``else`` branch (created lazily)."""
        if self._else is None:
            self._else = BlockBuilder()
            self._stmt.else_branch = _DeferredBlock(self._else)
        return self._else


class ProcedureBuilder(BlockBuilder):
    """Builds one procedure or function."""

    def __init__(
        self,
        name: str,
        params: Sequence[Tuple[str, ast.SilType]] = (),
        locals: Sequence[Tuple[str, ast.SilType]] = (),
        return_type: Optional[ast.SilType] = None,
        return_var: Optional[str] = None,
    ):
        super().__init__()
        self.name = name
        self.params = [ast.VarDecl(name=n, type=t) for n, t in params]
        self.locals = [ast.VarDecl(name=n, type=t) for n, t in locals]
        self.return_type = return_type
        self.return_var = return_var

    def local(self, name: str, sil_type: ast.SilType) -> "ProcedureBuilder":
        """Declare an additional local variable."""
        self.locals.append(ast.VarDecl(name=name, type=sil_type))
        return self

    def build(self) -> ast.Procedure:
        body = self.as_block()
        if self.return_type is not None:
            if self.return_var is None:
                raise ValueError(f"function {self.name!r} needs a return variable")
            return ast.Function(
                name=self.name,
                params=self.params,
                locals=self.locals,
                body=body,
                return_type=self.return_type,
                return_var=self.return_var,
            )
        return ast.Procedure(name=self.name, params=self.params, locals=self.locals, body=body)


class ProgramBuilder:
    """Builds a whole SIL program procedure by procedure."""

    def __init__(self, name: str = "program"):
        self.name = name
        self._procedures: List[ProcedureBuilder] = []

    def procedure(
        self,
        name: str,
        params: Sequence[Tuple[str, ast.SilType]] = (),
        locals: Sequence[Tuple[str, ast.SilType]] = (),
    ) -> ProcedureBuilder:
        builder = ProcedureBuilder(name, params=params, locals=locals)
        self._procedures.append(builder)
        return builder

    def function(
        self,
        name: str,
        params: Sequence[Tuple[str, ast.SilType]] = (),
        locals: Sequence[Tuple[str, ast.SilType]] = (),
        return_type: ast.SilType = INT,
        return_var: str = "result",
    ) -> ProcedureBuilder:
        builder = ProcedureBuilder(
            name, params=params, locals=locals, return_type=return_type, return_var=return_var
        )
        self._procedures.append(builder)
        return builder

    def build(self) -> ast.Program:
        """Build the surface program (not yet normalized)."""
        procedures = []
        functions = []
        for builder in self._procedures:
            built = builder.build()
            if isinstance(built, ast.Function):
                functions.append(built)
            else:
                procedures.append(built)
        return ast.Program(name=self.name, procedures=procedures, functions=functions)

    def build_core(self) -> Tuple[ast.Program, TypeInfo]:
        """Build, type check and normalize the program."""
        program = self.build()
        info = check_program(program)
        return normalize_program(program, info)
