"""Pretty printer for SIL programs.

Produces concrete syntax that the parser accepts (round-tripping is covered
by tests), including the parallel ``||`` construct — so the output of the
parallelizer can be printed in the style of Figure 8 of the paper.
"""

from __future__ import annotations

from typing import List

from . import ast

_INDENT = "  "


def format_expr(expr: ast.Expr) -> str:
    """Format an expression as SIL concrete syntax."""
    return _ExprFormatter().format(expr)


class _ExprFormatter:
    """Formats expressions with minimal parentheses (precedence-aware)."""

    _PRECEDENCE = {
        "or": 1,
        "and": 2,
        "=": 4,
        "<>": 4,
        "<": 4,
        "<=": 4,
        ">": 4,
        ">=": 4,
        "+": 5,
        "-": 5,
        "*": 6,
        "div": 6,
        "mod": 6,
    }

    def format(self, expr: ast.Expr, parent_prec: int = 0) -> str:
        if isinstance(expr, ast.IntLit):
            return str(expr.value)
        if isinstance(expr, ast.NilLit):
            return "nil"
        if isinstance(expr, ast.NewExpr):
            return "new()"
        if isinstance(expr, ast.Name):
            return expr.ident
        if isinstance(expr, ast.FieldAccess):
            return f"{self.format(expr.base, 10)}.{expr.field_name.value}"
        if isinstance(expr, ast.CallExpr):
            args = ", ".join(self.format(a) for a in expr.args)
            return f"{expr.name}({args})"
        if isinstance(expr, ast.UnOp):
            if expr.op == "not":
                return f"not {self.format(expr.operand, 3)}"
            return f"-{self.format(expr.operand, 7)}"
        if isinstance(expr, ast.BinOp):
            prec = self._PRECEDENCE.get(expr.op, 0)
            left = self.format(expr.left, prec)
            right = self.format(expr.right, prec + 1)
            text = f"{left} {expr.op} {right}"
            if prec < parent_prec:
                return f"({text})"
            return text
        raise TypeError(f"unknown expression node: {expr!r}")


def format_stmt(stmt: ast.Stmt, indent: int = 0) -> str:
    """Format a statement (possibly multi-line) as SIL concrete syntax."""
    return "\n".join(_format_stmt_lines(stmt, indent))


def _format_stmt_lines(stmt: ast.Stmt, indent: int) -> List[str]:
    pad = _INDENT * indent

    if isinstance(stmt, ast.Block):
        lines = [pad + "begin"]
        for i, inner in enumerate(stmt.stmts):
            inner_lines = _format_stmt_lines(inner, indent + 1)
            if i < len(stmt.stmts) - 1:
                inner_lines[-1] += ";"
            lines.extend(inner_lines)
        lines.append(pad + "end")
        return lines

    if isinstance(stmt, ast.ParallelStmt):
        parts = [_format_inline(branch) for branch in stmt.branches]
        return [pad + " || ".join(parts)]

    if isinstance(stmt, ast.IfStmt):
        lines = [pad + f"if {format_expr(stmt.cond)} then"]
        lines.extend(_format_stmt_lines(stmt.then_branch, indent + 1))
        if stmt.else_branch is not None:
            lines.append(pad + "else")
            lines.extend(_format_stmt_lines(stmt.else_branch, indent + 1))
        return lines

    if isinstance(stmt, ast.WhileStmt):
        lines = [pad + f"while {format_expr(stmt.cond)} do"]
        lines.extend(_format_stmt_lines(stmt.body, indent + 1))
        return lines

    return [pad + _format_inline(stmt)]


def _format_inline(stmt: ast.Stmt) -> str:
    """Format a statement on a single line (used inside ``||``)."""
    if isinstance(stmt, ast.Assign):
        return f"{format_expr(stmt.lhs)} := {format_expr(stmt.rhs)}"
    if isinstance(stmt, ast.AssignNil):
        return f"{stmt.target} := nil"
    if isinstance(stmt, ast.AssignNew):
        return f"{stmt.target} := new()"
    if isinstance(stmt, ast.CopyHandle):
        return f"{stmt.target} := {stmt.source}"
    if isinstance(stmt, ast.LoadField):
        return f"{stmt.target} := {stmt.source}.{stmt.field_name.value}"
    if isinstance(stmt, ast.StoreField):
        source = stmt.source if stmt.source is not None else "nil"
        return f"{stmt.target}.{stmt.field_name.value} := {source}"
    if isinstance(stmt, ast.LoadValue):
        return f"{stmt.target} := {stmt.source}.value"
    if isinstance(stmt, ast.StoreValue):
        return f"{stmt.target}.value := {format_expr(stmt.expr)}"
    if isinstance(stmt, ast.ScalarAssign):
        return f"{stmt.target} := {format_expr(stmt.expr)}"
    if isinstance(stmt, ast.ProcCall):
        args = ", ".join(format_expr(a) for a in stmt.args)
        return f"{stmt.name}({args})"
    if isinstance(stmt, ast.FuncAssign):
        args = ", ".join(format_expr(a) for a in stmt.args)
        return f"{stmt.target} := {stmt.name}({args})"
    if isinstance(stmt, ast.SkipStmt):
        return "skip"
    if isinstance(stmt, ast.ParallelStmt):
        return " || ".join(_format_inline(b) for b in stmt.branches)
    if isinstance(stmt, ast.Block):
        inner = "; ".join(_format_inline(s) for s in stmt.stmts)
        return f"begin {inner} end"
    if isinstance(stmt, ast.IfStmt):
        text = f"if {format_expr(stmt.cond)} then {_format_inline(stmt.then_branch)}"
        if stmt.else_branch is not None:
            text += f" else {_format_inline(stmt.else_branch)}"
        return text
    if isinstance(stmt, ast.WhileStmt):
        return f"while {format_expr(stmt.cond)} do {_format_inline(stmt.body)}"
    raise TypeError(f"unknown statement node: {stmt!r}")


def _format_decls(decls: List[ast.VarDecl], separator: str = "; ") -> str:
    """Group declarations by type: ``a, b: handle; i: int``."""
    if not decls:
        return ""
    groups: List[str] = []
    current_names: List[str] = []
    current_type = decls[0].type
    for decl in decls:
        if decl.type is current_type:
            current_names.append(decl.name)
        else:
            groups.append(f"{', '.join(current_names)}: {current_type.value}")
            current_names = [decl.name]
            current_type = decl.type
    groups.append(f"{', '.join(current_names)}: {current_type.value}")
    return separator.join(groups)


def format_procedure(proc: ast.Procedure, indent: int = 0) -> str:
    """Format a procedure or function declaration."""
    pad = _INDENT * indent
    keyword = "function" if isinstance(proc, ast.Function) else "procedure"
    header = f"{pad}{keyword} {proc.name}({_format_decls(proc.params)})"
    if isinstance(proc, ast.Function):
        header += f": {proc.return_type.value}"
    lines = [header]
    if proc.locals:
        lines.append(pad + _INDENT + _format_decls(proc.locals))
    lines.extend(_format_stmt_lines(proc.body, indent))
    if isinstance(proc, ast.Function):
        lines.append(f"{pad}return ({proc.return_var})")
    return "\n".join(lines)


def format_program(program: ast.Program) -> str:
    """Format a whole program as SIL concrete syntax."""
    parts = [f"program {program.name}"]
    for proc in program.procedures:
        parts.append(format_procedure(proc))
    for func in program.functions:
        parts.append(format_procedure(func))
    return "\n\n".join(parts) + "\n"
